// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng so that a fixed seed yields
// a bit-identical run (virtual-time results included). The engine is
// xoshiro256** seeded via splitmix64, which is fast, high quality, and easy
// to reproduce in other languages when cross-checking benchmark harnesses.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dm {

// splitmix64 step; used for seeding and cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless 64-bit mix, handy for deriving per-object seeds from ids.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  // xoshiro256** next().
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's method.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    assert(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    assert(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) noexcept { return next_double() < p; }

  // Exponentially distributed with the given mean (> 0).
  double exponential(double mean) noexcept {
    double u = next_double();
    if (u <= 0.0) u = 1e-18;
    return -mean * std::log(u);
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

// Zipfian sampler over [0, n) with skew theta (0 = uniform, ~0.99 typical for
// KV workloads). Precomputes the harmonic normalizer once; sampling is O(1)
// using the rejection-free method from Gray et al. (as in YCSB).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  std::uint64_t next(Rng& rng) noexcept;

  std::uint64_t n() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace dm
