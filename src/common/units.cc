#include "common/units.h"

#include <array>
#include <cstdio>

namespace dm {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kSuffix{"B", "KiB", "MiB", "GiB",
                                                      "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kSuffix.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(bytes), kSuffix[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", value, kSuffix[unit]);
  }
  return buf;
}

std::string format_duration(SimTime ns) {
  char buf[32];
  const double v = static_cast<double>(ns);
  if (ns < kMicro) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  } else if (ns < kMilli) {
    std::snprintf(buf, sizeof(buf), "%.2fus", v / static_cast<double>(kMicro));
  } else if (ns < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", v / static_cast<double>(kMilli));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", v / static_cast<double>(kSecond));
  }
  return buf;
}

}  // namespace dm
