#include "common/histogram.h"

#include <algorithm>
#include <bit>

#include "common/units.h"

namespace dm {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

std::size_t Histogram::bucket_for(std::uint64_t value) noexcept {
  if (value < (1u << kSubBucketsLog2)) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBucketsLog2;
  const auto sub = static_cast<std::size_t>(value >> shift) &
                   ((1u << kSubBucketsLog2) - 1);
  const auto index = (static_cast<std::size_t>(msb - kSubBucketsLog2 + 1)
                      << kSubBucketsLog2) + sub;
  return std::min(index, kNumBuckets - 1);
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) noexcept {
  if (index < (1u << kSubBucketsLog2)) return index;
  const std::size_t octave = (index >> kSubBucketsLog2);
  const std::size_t sub = index & ((1u << kSubBucketsLog2) - 1);
  const int shift = static_cast<int>(octave) - 1;
  return ((1ULL << kSubBucketsLog2) + sub + 1) << shift;
}

void Histogram::record(std::uint64_t value) noexcept { record_n(value, 1); }

void Histogram::record_n(std::uint64_t value, std::uint64_t n) noexcept {
  if (n == 0) return;
  buckets_[bucket_for(value)] += n;
  count_ += n;
  sum_ += value * n;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

std::uint64_t Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] >= target) {
      // Interpolate within the bucket assuming samples spread evenly over
      // [lo, hi) instead of snapping every quantile to the bucket's upper
      // bound; clamping to the observed [min, max] keeps single-sample and
      // boundary quantiles exact.
      const std::uint64_t lo = i == 0 ? 0 : bucket_upper_bound(i - 1);
      const std::uint64_t hi = bucket_upper_bound(i);
      const double fraction = static_cast<double>(target - seen) /
                              static_cast<double>(buckets_[i]);
      const auto interpolated =
          lo + static_cast<std::uint64_t>(
                   fraction * static_cast<double>(hi - lo) + 0.5);
      return std::clamp(interpolated, min_, max_);
    }
    seen += buckets_[i];
  }
  return max_;
}

Histogram Histogram::delta_since(const Histogram& past) const noexcept {
  Histogram delta;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t before = past.buckets_[i];
    const std::uint64_t d = buckets_[i] > before ? buckets_[i] - before : 0;
    if (d == 0) continue;
    delta.buckets_[i] = d;
    delta.count_ += d;
    // The window's true min/max are gone; approximate them by the occupied
    // bucket range so percentile clamping stays sound for windowed queries.
    const std::uint64_t lo = i == 0 ? 0 : bucket_upper_bound(i - 1);
    delta.min_ = std::min(delta.min_, lo);
    delta.max_ = std::max(delta.max_, bucket_upper_bound(i));
  }
  delta.sum_ = sum_ > past.sum_ ? sum_ - past.sum_ : 0;
  return delta;
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

std::string Histogram::summary_duration() const {
  std::string out = "n=" + std::to_string(count_);
  out += " mean=" + format_duration(static_cast<SimTime>(mean()));
  out += " p50=" + format_duration(static_cast<SimTime>(p50()));
  out += " p99=" + format_duration(static_cast<SimTime>(p99()));
  out += " max=" + format_duration(static_cast<SimTime>(max()));
  return out;
}

}  // namespace dm
