// Log-bucketed histogram for latency/size distributions.
//
// Buckets grow geometrically (factor ~1.25 by default via 4 sub-buckets per
// power of two), giving <13% relative error on percentile queries while using
// a few hundred fixed buckets — enough for ns..hours latency ranges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dm {

class Histogram {
 public:
  Histogram();

  void record(std::uint64_t value) noexcept;
  void record_n(std::uint64_t value, std::uint64_t count) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }
  std::uint64_t sum() const noexcept { return sum_; }

  // quantile in [0,1]; interpolates within the containing bucket and clamps
  // to the observed [min, max].
  std::uint64_t percentile(double q) const noexcept;
  std::uint64_t p50() const noexcept { return percentile(0.50); }
  std::uint64_t p99() const noexcept { return percentile(0.99); }

  void merge(const Histogram& other) noexcept;
  void reset() noexcept;

  // Samples recorded since `past` (an earlier copy of this histogram), as a
  // standalone histogram: bucket-wise subtraction. The window's min/max are
  // approximated by its occupied bucket range. Used for SLO windows.
  Histogram delta_since(const Histogram& past) const noexcept;

  // One-line summary: "n=1000 mean=1.2us p50=1.1us p99=3.0us max=5.5us"
  std::string summary_duration() const;

 private:
  static std::size_t bucket_for(std::uint64_t value) noexcept;
  static std::uint64_t bucket_upper_bound(std::size_t index) noexcept;

  static constexpr int kSubBucketsLog2 = 2;  // 4 sub-buckets per octave
  static constexpr std::size_t kNumBuckets = 64 << kSubBucketsLog2;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace dm
