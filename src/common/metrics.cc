#include "common/metrics.h"

namespace dm {

std::string MetricsRegistry::to_string() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    out += name;
    out += ": ";
    out += hist.summary_duration();
    out += '\n';
  }
  return out;
}

}  // namespace dm
