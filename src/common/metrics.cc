#include "common/metrics.h"

#include <cstdio>

namespace dm {

std::string MetricsRegistry::to_string() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    char line[64];
    std::snprintf(line, sizeof(line), " count=%llu mean=%.3f",
                  static_cast<unsigned long long>(hist.count()), hist.mean());
    out += name;
    out += ':';
    out += line;
    out += " p50=" + std::to_string(hist.p50());
    out += " p99=" + std::to_string(hist.p99());
    out += " max=" + std::to_string(hist.max());
    out += '\n';
  }
  return out;
}

}  // namespace dm
