// O(1) LRU recency tracker over arbitrary keys.
//
// Used by the swap frontends (victim selection) and caches (eviction order).
// touch() moves a key to the MRU end; evict_lru() pops the LRU end.
#pragma once

#include <cassert>
#include <list>
#include <optional>
#include <unordered_map>

namespace dm {

template <typename Key>
class LruTracker {
 public:
  // Inserts the key as MRU, or refreshes it to MRU if present.
  void touch(const Key& key) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      order_.splice(order_.end(), order_, it->second);
      return;
    }
    order_.push_back(key);
    index_.emplace(key, std::prev(order_.end()));
  }

  bool contains(const Key& key) const { return index_.count(key) > 0; }

  // Removes and returns the least-recently-used key, or nullopt if empty.
  std::optional<Key> evict_lru() {
    if (order_.empty()) return std::nullopt;
    Key victim = order_.front();
    order_.pop_front();
    index_.erase(victim);
    return victim;
  }

  // Peek at the LRU key without removing it.
  std::optional<Key> peek_lru() const {
    if (order_.empty()) return std::nullopt;
    return order_.front();
  }

  bool erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  std::size_t size() const noexcept { return index_.size(); }
  bool empty() const noexcept { return index_.empty(); }

  void clear() {
    order_.clear();
    index_.clear();
  }

  // LRU-to-MRU iteration (read-only).
  auto begin() const { return order_.begin(); }
  auto end() const { return order_.end(); }

 private:
  std::list<Key> order_;  // front = LRU, back = MRU
  std::unordered_map<Key, typename std::list<Key>::iterator> index_;
};

}  // namespace dm
