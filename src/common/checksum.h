// FNV-1a 64-bit checksum over byte spans.
//
// Tests use checksums to verify end-to-end integrity of pages that travel
// shared-memory -> remote -> disk and back (no silent corruption in any
// copy/compress/replicate path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dm {

constexpr std::uint64_t fnv1a(std::span<const std::byte> data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace dm
