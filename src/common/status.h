// Lightweight error-handling vocabulary for the disaggregated-memory library.
//
// The library reports expected runtime failures (remote node down, pool
// exhausted, entry not found) through Status / StatusOr<T> rather than
// exceptions, so that failure paths are explicit at call sites and cheap to
// test. Programming errors (violated preconditions) still use assertions.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dm {

// Error taxonomy used across all modules. Values are stable for logging.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,          // entry/key/slab absent
  kAlreadyExists = 2,     // duplicate registration or key
  kResourceExhausted = 3, // pool/arena/buffer out of space
  kUnavailable = 4,       // node/link down, connection lost
  kFailedPrecondition = 5,// call not valid in current state
  kInvalidArgument = 6,   // malformed argument
  kTimeout = 7,           // handshake or operation deadline exceeded
  kDataLoss = 8,          // all replicas lost / corruption detected
  kInternal = 9,          // invariant violation surfaced as error
  kAborted = 10,          // transaction rolled back (e.g. replica quorum failed)
};

std::string_view to_string(StatusCode code) noexcept;

// A success-or-error result with an optional human-readable message.
// Cheap to copy in the success case (empty message string).
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return {}; }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

// Convenience constructors, mirroring absl-style helpers.
inline Status NotFoundError(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExistsError(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status ResourceExhaustedError(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status UnavailableError(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status FailedPreconditionError(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status InvalidArgumentError(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status TimeoutError(std::string msg) {
  return {StatusCode::kTimeout, std::move(msg)};
}
inline Status DataLossError(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status InternalError(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status AbortedError(std::string msg) {
  return {StatusCode::kAborted, std::move(msg)};
}

// StatusOr<T>: either a value or a non-OK Status. Access to value() on an
// error is a programming error (asserted).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : repr_(std::move(value)) {}  // NOLINT: implicit by design
  StatusOr(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "StatusOr must not be built from an OK status");
  }

  bool ok() const noexcept { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(repr_);
  }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<Status, T> repr_;
};

// Propagate-on-error helpers.
#define DM_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::dm::Status dm_status_ = (expr);              \
    if (!dm_status_.ok()) return dm_status_;       \
  } while (false)

#define DM_ASSIGN_OR_RETURN(lhs, expr)             \
  auto dm_statusor_##__LINE__ = (expr);            \
  if (!dm_statusor_##__LINE__.ok())                \
    return dm_statusor_##__LINE__.status();        \
  lhs = std::move(dm_statusor_##__LINE__).value()

}  // namespace dm
