// Minimal leveled logger.
//
// The simulator is single-threaded by design (discrete-event), so the logger
// keeps no locks. Level is per-Logger, not global, so tests can silence
// subsystems independently. Defaults to kWarn to keep benches quiet.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace dm {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  explicit Logger(std::string tag, LogLevel level = LogLevel::kWarn)
      : tag_(std::move(tag)), level_(level) {}

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }
  bool enabled(LogLevel level) const noexcept { return level >= level_; }

  // Redirects output (tests capture into an ostringstream instead of
  // polluting std::clog). Null restores the default std::clog sink. The
  // stream is not owned and must outlive the logger's use.
  void set_sink(std::ostream* sink) noexcept { sink_ = sink; }

  template <typename... Args>
  void log(LogLevel level, const Args&... args) const {
    if (!enabled(level)) return;
    std::ostringstream os;
    os << '[' << level_name(level) << "] " << tag_ << ": ";
    (os << ... << args);
    os << '\n';
    (sink_ != nullptr ? *sink_ : std::clog) << os.str();
  }

  template <typename... Args>
  void debug(const Args&... args) const { log(LogLevel::kDebug, args...); }
  template <typename... Args>
  void info(const Args&... args) const { log(LogLevel::kInfo, args...); }
  template <typename... Args>
  void warn(const Args&... args) const { log(LogLevel::kWarn, args...); }
  template <typename... Args>
  void error(const Args&... args) const { log(LogLevel::kError, args...); }

 private:
  static std::string_view level_name(LogLevel level) noexcept {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
  }

  std::string tag_;
  LogLevel level_;
  std::ostream* sink_ = nullptr;
};

}  // namespace dm
