// Byte/time units and human-readable formatting.
//
// Virtual time across the library is a count of simulated nanoseconds
// (SimTime). Sizes are in bytes. The literals keep configuration readable:
//   pool.capacity = 64 * MiB;   deadline = 5 * kMilli;
#pragma once

#include <cstdint>
#include <string>

namespace dm {

using SimTime = std::int64_t;  // virtual nanoseconds since simulation start

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;

inline constexpr SimTime kNano = 1;
inline constexpr SimTime kMicro = 1000 * kNano;
inline constexpr SimTime kMilli = 1000 * kMicro;
inline constexpr SimTime kSecond = 1000 * kMilli;

// "4.0KiB", "2.5GiB", "617B"
std::string format_bytes(std::uint64_t bytes);

// "1.50ms", "2.3s", "800ns"
std::string format_duration(SimTime ns);

}  // namespace dm
