#include "common/rng.h"

namespace dm {
namespace {

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = zeta(n, theta);
  zeta2theta_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfGenerator::next(Rng& rng) noexcept {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto idx = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return idx >= n_ ? n_ - 1 : idx;
}

}  // namespace dm
