#include "swap/swap_manager.h"

#include <algorithm>
#include <cstring>

namespace dm::swap {
namespace {

compress::GranularityMode granularity_of(CompressionMode mode) {
  return mode == CompressionMode::kTwoGranularity
             ? compress::GranularityMode::kTwo
             : compress::GranularityMode::kFour;
}

}  // namespace

SwapManager::SwapManager(core::Ldmc& client, Config config,
                         PageContentFn content)
    : client_(client), config_(config), content_(std::move(content)),
      compressor_(granularity_of(config.compression)) {
  if (config_.zswap_pool_bytes > 0) zswap_.emplace(config_.zswap_pool_bytes);
  // Backup region: top half of the node's swap disk (never read back; it
  // models Infiniswap's asynchronous durability path).
  backup_cursor_ = client_.service().node().disk().capacity() / 2;
}

void SwapManager::charge(SimTime cost) {
  auto& sim = client_.service().node().simulator();
  sim.run_until(sim.now() + cost);
}

Status SwapManager::touch(std::uint64_t page, bool write) {
  auto& latency = client_.service().node().fabric().config().latency;
  auto it = resident_.find(page);
  if (it != resident_.end()) {
    lru_.touch(page);
    if (write) {
      dirty_.insert(page);
      // A write invalidates the swap-cache copy (as the kernel does).
      DM_RETURN_IF_ERROR(invalidate_backing(page));
    }
    charge(latency.dram.overhead_ns);
    return Status::Ok();
  }
  ++faults_;
  // Fault latency by service path, in virtual time: the zswap pool hit,
  // the backend fault (whatever tier the batch entry lives in), and the
  // demand-content cold fault. The spread between these histograms is the
  // paper's Fig 9 tier story in one snapshot.
  auto& sim = client_.service().node().simulator();
  const SimTime fault_started = sim.now();
  const char* path = nullptr;
  if (zswap_ && zswap_->contains(page)) {
    path = "zswap";
    DM_RETURN_IF_ERROR(fault_in_zswap(page));
  } else if (backed_.count(page) > 0) {
    path = "backend";
    DM_RETURN_IF_ERROR(fault_in(page));
  } else {
    // First touch: demand-zero (well, demand-content) fault.
    path = "cold";
    DM_RETURN_IF_ERROR(make_room(1));
    auto [slot, inserted] =
        resident_.try_emplace(page, std::vector<std::byte>(kPageBytes));
    content_(page, slot->second);
    lru_.touch(page);
    ++metrics_.counter("swap.cold_faults");
  }
  metrics_.histogram(std::string("swap.fault_ns.") + path)
      .record(static_cast<std::uint64_t>(sim.now() - fault_started));
  if (write) {
    dirty_.insert(page);
    DM_RETURN_IF_ERROR(invalidate_backing(page));
  }
  charge(latency.dram.overhead_ns);
  return Status::Ok();
}

Status SwapManager::invalidate_backing(std::uint64_t page) {
  if (zswap_) zswap_->invalidate(page);
  auto it = backed_.find(page);
  if (it == backed_.end()) return Status::Ok();
  const mem::EntryId entry = it->second.batch;
  backed_.erase(it);
  auto batch_it = batches_.find(entry);
  if (batch_it == batches_.end())
    return InternalError("backing references unknown batch");
  auto& members = batch_it->second.pages;
  members.erase(std::find(members.begin(), members.end(), page));
  if (members.empty()) {
    batches_.erase(batch_it);
    DM_RETURN_IF_ERROR(client_.remove_sync(entry));
  }
  return Status::Ok();
}

Status SwapManager::make_room(std::uint64_t incoming_pages) {
  while (resident_.size() + incoming_pages > config_.resident_pages) {
    DM_RETURN_IF_ERROR(evict_for_space());
  }
  return Status::Ok();
}

Status SwapManager::evict_for_space() {
  // Walk victims in LRU order. Clean pages with a valid swap-cache copy are
  // dropped for free (the copy down-tier is still good); dirty or unbacked
  // pages accumulate into one write-out batch. Clean drops do not end the
  // walk early: stopping at the first clean page would fragment the dirty
  // write-out into tiny batches and destroy the §IV.H clustering (and the
  // Linux baseline's write clustering with it).
  std::vector<std::uint64_t> to_write;
  bool freed_any = false;
  while (to_write.size() < config_.batch_pages && !lru_.empty()) {
    auto victim = lru_.evict_lru();
    if (!victim) break;
    const std::uint64_t page = *victim;
    const bool clean = dirty_.count(page) == 0 && backed_.count(page) > 0;
    if (clean) {
      resident_.erase(page);
      freed_any = true;
      ++metrics_.counter("swap.clean_drops");
      // Enough frames freed without any I/O? Stop walking.
      if (to_write.empty()) break;
      continue;
    }
    to_write.push_back(page);
  }
  if (to_write.empty()) {
    if (freed_any) return Status::Ok();
    return FailedPreconditionError("nothing resident to evict");
  }
  return write_out_batch(to_write);
}

Status SwapManager::write_out_batch(const std::vector<std::uint64_t>& pages) {
  // Extract the victims' bytes first; the zswap tier (when enabled)
  // absorbs them and only its writebacks continue to the backend.
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> extracted;
  extracted.reserve(pages.size());
  for (std::uint64_t page : pages) {
    auto node = resident_.extract(page);
    dirty_.erase(page);
    extracted.emplace_back(page, std::move(node.mapped()));
  }

  if (zswap_) {
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> writeback;
    for (auto& [page, bytes] : extracted) {
      charge(config_.compress_ns);
      auto overflow = zswap_->put(page, bytes);
      if (!overflow.ok()) return overflow.status();
      for (auto& wb : *overflow)
        writeback.emplace_back(wb.page, std::move(wb.bytes));
    }
    if (writeback.empty()) return Status::Ok();
    return store_batch(std::move(writeback));
  }
  return store_batch(std::move(extracted));
}

Status SwapManager::store_batch(
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> pages) {
  // The batch is assembled in the node's send staging pool (paper Fig. 1:
  // the cluster-wide DM send buffer), then handed to the LDMC in one piece.
  auto& sim = client_.service().node().simulator();
  const SimTime batch_started = sim.now();
  auto& staging = client_.service().node().send_pool();
  staging.reset();
  std::vector<std::byte> buffer;
  buffer.reserve(pages.size() * kPageBytes);
  BatchInfo batch;
  const mem::EntryId entry = next_batch_++;

  for (auto& [page, bytes] : pages) {

    if (config_.extra_op_overhead > 0) charge(config_.extra_op_overhead);
    Backing info;
    info.batch = entry;
    info.offset = static_cast<std::uint32_t>(buffer.size());
    if (config_.compression == CompressionMode::kOff) {
      info.length = kPageBytes;
      buffer.insert(buffer.end(), bytes.begin(), bytes.end());
    } else {
      charge(config_.compress_ns);
      auto compressed = compressor_.compress(bytes);
      info.compressed = true;
      info.raw = compressed.is_raw;
      info.length = static_cast<std::uint32_t>(compressed.data.size());
      buffer.insert(buffer.end(), compressed.data.begin(),
                    compressed.data.end());
      metrics_.counter("swap.compressed_bytes") += compressed.bucket;
      metrics_.counter("swap.logical_bytes") += kPageBytes;
    }
    backed_.emplace(page, info);
    batch.pages.push_back(page);
  }
  batches_.emplace(entry, batch);

  // Stage the assembled batch; falls back to the local vector if the
  // window exceeds the pool (functional behaviour is identical — the pool
  // models the reserved send-side memory of §IV.B).
  std::span<const std::byte> outgoing = buffer;
  if (auto staged = staging.stage(buffer.size()); staged.ok()) {
    std::memcpy(staged->data(), buffer.data(), buffer.size());
    outgoing = *staged;
    ++metrics_.counter("swap.batches_staged");
  }
  Status stored = client_.put_sync(entry, outgoing);
  if (!stored.ok()) {
    // Roll back: restore the victims as resident from the staged buffer.
    // (For zswap writebacks "resident" is a safe over-approximation: the
    // pages re-enter the LRU dirty and will be retried.)
    for (std::uint64_t page : batch.pages) {
      const Backing info = backed_.at(page);
      std::vector<std::byte> bytes(kPageBytes);
      if (info.compressed && !info.raw) {
        compress::CompressedPage cp;
        cp.data.assign(buffer.begin() + info.offset,
                       buffer.begin() + info.offset + info.length);
        cp.is_raw = false;
        (void)compressor_.decompress(cp, bytes);
      } else {
        std::memcpy(bytes.data(), buffer.data() + info.offset, info.length);
      }
      resident_.emplace(page, std::move(bytes));
      lru_.touch(page);
      dirty_.insert(page);  // still unbacked down-tier
      backed_.erase(page);
    }
    batches_.erase(entry);
    return stored;
  }
  ++swap_outs_;
  if (auto loc = client_.map().lookup(entry); loc.ok() && loc->degraded) {
    // Degraded-mode store (§IV.D hardening): the batch is durable but below
    // its intended placement — remote with a short replica set, or pushed
    // to disk because remote memory was unreachable. The repair service
    // restores the placement in the background; swapping continues.
    ++metrics_.counter("swap.degraded_batches");
  }
  metrics_.counter("swap.swapped_out_pages") += batch.pages.size();
  // Compression + staging + replicated store, end to end for one window.
  metrics_.histogram("swap.swapout_ns")
      .record(static_cast<std::uint64_t>(sim.now() - batch_started));

  if (config_.disk_backup) {
    // Asynchronous full-page backup writes (Infiniswap durability path);
    // they queue on the disk but do not block the fault path.
    auto& disk = client_.service().node().disk();
    for (std::size_t i = 0; i < batch.pages.size(); ++i) {
      if (backup_cursor_ + kPageBytes > disk.capacity())
        backup_cursor_ = disk.capacity() / 2;
      std::vector<std::byte> copy(kPageBytes);
      (void)disk.write(backup_cursor_, copy, {});
      backup_cursor_ += kPageBytes;
      ++metrics_.counter("swap.backup_writes");
    }
  }
  return Status::Ok();
}

Status SwapManager::materialize(std::uint64_t page,
                                std::span<const std::byte> stored,
                                const Backing& info) {
  std::vector<std::byte> bytes(kPageBytes);
  if (info.compressed && !info.raw) {
    charge(config_.decompress_ns);
    compress::CompressedPage cp;
    cp.data.assign(stored.begin(), stored.end());
    cp.is_raw = false;
    DM_RETURN_IF_ERROR(compressor_.decompress(cp, bytes));
  } else {
    if (stored.size() != kPageBytes)
      return DataLossError("raw page has wrong stored size");
    std::memcpy(bytes.data(), stored.data(), kPageBytes);
  }
  resident_.insert_or_assign(page, std::move(bytes));
  lru_.touch(page);
  ++swap_ins_;
  return Status::Ok();
}

Status SwapManager::fault_in_zswap(std::uint64_t page) {
  // Load from the pool BEFORE making room: eviction below may push other
  // pages into zswap and write this very entry back down-tier.
  charge(config_.decompress_ns);
  std::vector<std::byte> bytes(kPageBytes);
  if (!zswap_->take(page, bytes))
    return InternalError("zswap entry vanished during fault");
  DM_RETURN_IF_ERROR(make_room(1));
  // zswap frees the entry on load: the page returns dirty (unbacked).
  resident_.insert_or_assign(page, std::move(bytes));
  dirty_.insert(page);
  lru_.touch(page);
  ++swap_ins_;
  ++metrics_.counter("swap.zswap_hits");
  return Status::Ok();
}

Status SwapManager::fault_in(std::uint64_t page) {
  const Backing info = backed_.at(page);
  auto batch_it = batches_.find(info.batch);
  if (batch_it == batches_.end())
    return InternalError("backed page references unknown batch");

  if (config_.proactive_batch_swap_in) {
    // PBS: fetch the whole batch entry with one disaggregated-memory read
    // and repopulate every non-resident page stored in it. The swap-cache
    // copies stay valid (pages come back clean).
    auto size = client_.stored_size(info.batch);
    if (!size.ok()) return size.status();
    std::vector<std::byte> buffer(*size);
    DM_RETURN_IF_ERROR(client_.get_sync(info.batch, buffer));

    std::vector<std::uint64_t> restore;
    for (std::uint64_t member : batch_it->second.pages)
      if (resident_.count(member) == 0) restore.push_back(member);
    DM_RETURN_IF_ERROR(make_room(restore.size()));
    if (config_.extra_op_overhead > 0)
      charge(config_.extra_op_overhead *
             static_cast<SimTime>(restore.size()));
    for (std::uint64_t member : restore) {
      const Backing member_info = backed_.at(member);
      DM_RETURN_IF_ERROR(materialize(
          member,
          std::span<const std::byte>(buffer).subspan(member_info.offset,
                                                     member_info.length),
          member_info));
    }
    ++metrics_.counter("swap.pbs_batch_ins");
    return Status::Ok();
  }

  // Non-PBS: the batch is still the unit of storage (one §IV.H message
  // holds the window), so the fault fetches the batch entry but restores
  // only the faulted page — its siblings stay down-tier and each pays the
  // same fetch again on its own fault. This is exactly the waste PBS
  // removes. Batches of one page degenerate to a cheap sub-read.
  if (config_.extra_op_overhead > 0) charge(config_.extra_op_overhead);
  if (batch_it->second.pages.size() > 1) {
    auto size = client_.stored_size(info.batch);
    if (!size.ok()) return size.status();
    std::vector<std::byte> buffer(*size);
    DM_RETURN_IF_ERROR(client_.get_sync(info.batch, buffer));
    DM_RETURN_IF_ERROR(make_room(1));
    DM_RETURN_IF_ERROR(materialize(
        page,
        std::span<const std::byte>(buffer).subspan(info.offset, info.length),
        info));
  } else {
    std::vector<std::byte> stored(info.length);
    DM_RETURN_IF_ERROR(
        client_.get_range_sync(info.batch, info.offset, stored));
    DM_RETURN_IF_ERROR(make_room(1));
    DM_RETURN_IF_ERROR(materialize(page, stored, info));
  }
  ++metrics_.counter("swap.single_page_ins");
  return Status::Ok();
}

Status SwapManager::flush_all() {
  while (!resident_.empty()) {
    DM_RETURN_IF_ERROR(evict_for_space());
  }
  return Status::Ok();
}

StatusOr<std::span<const std::byte>> SwapManager::resident_bytes(
    std::uint64_t page) const {
  auto it = resident_.find(page);
  if (it == resident_.end()) return NotFoundError("page not resident");
  return std::span<const std::byte>(it->second);
}

}  // namespace dm::swap
