#include "swap/swap_manager.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"
#include "common/units.h"
#include "compress/page_compressor.h"
#include "cxl/page_tier.h"
#include "core/ldmc.h"
#include "sim/span_sink.h"
#include "swap/pattern_tracker.h"

namespace dm::swap {
namespace {

compress::GranularityMode granularity_of(CompressionMode mode) {
  return mode == CompressionMode::kTwoGranularity
             ? compress::GranularityMode::kTwo
             : compress::GranularityMode::kFour;
}

}  // namespace

SwapManager::SwapManager(core::Ldmc& client, Config config,
                         PageContentFn content)
    : client_(client), config_(config), content_(std::move(content)),
      compressor_(granularity_of(config.compression)) {
  if (config_.zswap_pool_bytes > 0) zswap_.emplace(config_.zswap_pool_bytes);
  if (config_.adaptive_pbs) {
    // Cap the window so a PBS restore can always fit the resident budget
    // (make_room(w) must terminate with frames to spare).
    config_.max_batch_pages = std::max<std::size_t>(
        config_.min_batch_pages,
        std::min<std::size_t>(config_.max_batch_pages,
                              config_.resident_pages / 2));
    pattern_.emplace(config_.pattern_history,
                     static_cast<std::int64_t>(config_.max_batch_pages));
    window_.emplace(AdaptiveWindow::Config{
        config_.min_batch_pages, config_.max_batch_pages,
        std::clamp(config_.batch_pages, config_.min_batch_pages,
                   config_.max_batch_pages),
        config_.pattern_hysteresis});
  }
  // Backup region: top half of the node's swap disk (never read back; it
  // models Infiniswap's asynchronous durability path).
  backup_cursor_ = client_.service().node().disk().capacity() / 2;
}

SwapManager::~SwapManager() { *alive_ = false; }

void SwapManager::charge(SimTime cost) {
  auto& sim = client_.service().node().simulator();
  sim.run_until(sim.now() + cost);
}

std::size_t SwapManager::current_window() const noexcept {
  return window_ ? window_->current() : config_.batch_pages;
}

AccessPattern SwapManager::current_pattern() const noexcept {
  return pattern_ ? pattern_->classify() : AccessPattern::kUnknown;
}

void SwapManager::observe_fault(std::uint64_t page) {
  pattern_->record(page);
  const AccessPattern verdict = pattern_->classify();
  ++metrics_.counter(std::string("swap.pattern.") +
                     std::string(to_string(verdict)));
  const std::size_t window = window_->update(verdict);
  metrics_.histogram("swap.pbs.window")
      .record(static_cast<std::uint64_t>(window));
}

bool SwapManager::pbs_fanout_suppressed() {
  if (!config_.adaptive_pbs) return false;
  if (pattern_->classify() != AccessPattern::kRandom) return false;
  ++metrics_.counter("swap.pbs.fanout_skips");
  return true;
}

Status SwapManager::touch(std::uint64_t page, bool write) {
  // Safe point: roll back any write-back flush that failed while previous
  // faults were in flight (pages return resident+dirty, nothing is lost).
  if (wb_enabled()) (void)wb_process_failures();
  auto& latency = client_.service().node().fabric().config().latency;
  auto it = resident_.find(page);
  if (it != resident_.end()) {
    lru_.touch(page);
    if (write) {
      dirty_.insert(page);
      // A write invalidates the swap-cache copy (as the kernel does).
      DM_RETURN_IF_ERROR(invalidate_backing(page));
    }
    charge(latency.dram.overhead_ns);
    return Status::Ok();
  }
  ++faults_;
  if (config_.adaptive_pbs) observe_fault(page);
  // Fault latency by service path, in virtual time: the zswap pool hit,
  // the write-back staging hit, the backend fault (whatever tier the batch
  // entry lives in), and the demand-content cold fault. The spread between
  // these histograms is the paper's Fig 9 tier story in one snapshot.
  auto& sim = client_.service().node().simulator();
  const SimTime fault_started = sim.now();
  // Causal root: a traced fault opens a fresh trace whose root span covers
  // exactly the histogram interval (closed before the record below, so the
  // breakdown components sum to the measured fault latency). active_trace_
  // threads the id through every LDMC call the fault triggers.
  if (spans_ != nullptr)
    active_trace_ = client_.service().node().next_trace_id();
  sim::SpanScope fault_span(spans_, active_trace_,
                            client_.service().node().id(), "swap",
                            "swap.fault");
  struct TraceReset {
    net::TraceId* slot;
    ~TraceReset() { *slot = net::kNoTrace; }
  } trace_reset{&active_trace_};
  const char* path = nullptr;
  // Set when a CXL line access served the fault with the page staying
  // pooled: no residency change, and for a write the dirty line lives in
  // the coherence layer (written back on demotion), so the resident-page
  // dirty/backing bookkeeping below must not run.
  bool cxl_in_place = false;
  if (config_.cxl_tier != nullptr && config_.cxl_tier->contains(page)) {
    path = "cxl";
    DM_RETURN_IF_ERROR(fault_in_cxl(page, write, cxl_in_place));
  } else if (zswap_ && zswap_->contains(page)) {
    path = "zswap";
    DM_RETURN_IF_ERROR(fault_in_zswap(page));
  } else if (auto backing = backed_.find(page); backing != backed_.end()) {
    path = wb_enabled() && wb_.count(backing->second.batch) > 0 ? "wb"
                                                                : "backend";
    DM_RETURN_IF_ERROR(fault_in(page));
  } else {
    // First touch: demand-zero (well, demand-content) fault.
    path = "cold";
    DM_RETURN_IF_ERROR(make_room(1));
    auto [slot, inserted] =
        resident_.try_emplace(page, std::vector<std::byte>(kPageBytes));
    content_(page, slot->second);
    lru_.touch(page);
    ++metrics_.counter("swap.cold_faults");
  }
  fault_span.close();
  active_trace_ = net::kNoTrace;
  metrics_.histogram(std::string("swap.fault_ns.") + path)
      .record(static_cast<std::uint64_t>(sim.now() - fault_started));
  if (write && !cxl_in_place) {
    dirty_.insert(page);
    DM_RETURN_IF_ERROR(invalidate_backing(page));
  }
  charge(latency.dram.overhead_ns);
  return Status::Ok();
}

Status SwapManager::fault_in_cxl(std::uint64_t page, bool write,
                                 bool& in_place) {
  cxl::CxlPageTier* tier = config_.cxl_tier;
  // The accessed line cycles deterministically with the page's hit count
  // (stands in for the workload's sub-page offset stream).
  const std::size_t line_index =
      static_cast<std::size_t>(tier->touches(page)) % tier->lines_per_page();
  DM_RETURN_IF_ERROR(tier->touch_line(page, line_index, write,
                                      active_trace_));
  ++metrics_.counter("swap.cxl.line_faults");
  if (tier->touches(page) < config_.cxl_promote_threshold) {
    in_place = true;
    return Status::Ok();
  }
  // Repeated sub-page hits proved the page hot: promote the whole page
  // back into DRAM (the pool copy was the only copy, so it returns dirty
  // with respect to every lower tier).
  DM_RETURN_IF_ERROR(make_room(1));
  std::vector<std::byte> bytes(kPageBytes);
  DM_RETURN_IF_ERROR(tier->promote(page, bytes, active_trace_));
  resident_.insert_or_assign(page, std::move(bytes));
  lru_.touch(page);
  dirty_.insert(page);
  ++swap_ins_;
  ++metrics_.counter("swap.cxl.promotions");
  return Status::Ok();
}

Status SwapManager::cxl_demote(std::uint64_t page,
                               std::span<const std::byte> bytes) {
  cxl::CxlPageTier* tier = config_.cxl_tier;
  if (tier->full()) DM_RETURN_IF_ERROR(cxl_spill_coldest());
  // Victims reaching this path are never backed (dirty pages invalidated
  // their backing on write; clean backed pages were dropped for free), so
  // the pool copy is authoritative — but keep the invariant airtight.
  DM_RETURN_IF_ERROR(invalidate_backing(page));
  DM_RETURN_IF_ERROR(tier->demote(page, bytes, active_trace_));
  ++metrics_.counter("swap.cxl.demotions");
  return Status::Ok();
}

Status SwapManager::cxl_spill_coldest() {
  cxl::CxlPageTier* tier = config_.cxl_tier;
  auto victim = tier->coldest();
  if (!victim) return ResourceExhaustedError("empty CXL pool cannot spill");
  std::vector<std::byte> bytes(kPageBytes);
  DM_RETURN_IF_ERROR(tier->promote(*victim, bytes, active_trace_));
  ++metrics_.counter("swap.cxl.spills");
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> batch;
  batch.emplace_back(*victim, std::move(bytes));
  return store_batch(std::move(batch));
}

Status SwapManager::shed_cxl(std::size_t pages) {
  if (config_.cxl_tier == nullptr) return Status::Ok();
  const std::size_t count = std::min(pages, config_.cxl_tier->used());
  for (std::size_t i = 0; i < count; ++i)
    DM_RETURN_IF_ERROR(cxl_spill_coldest());
  if (count > 0) metrics_.counter("swap.cxl.shed_pages") += count;
  return Status::Ok();
}

Status SwapManager::invalidate_backing(std::uint64_t page) {
  if (zswap_) zswap_->invalidate(page);
  auto it = backed_.find(page);
  if (it == backed_.end()) return Status::Ok();
  const mem::EntryId entry = it->second.batch;
  backed_.erase(it);
  auto batch_it = batches_.find(entry);
  if (batch_it == batches_.end())
    return InternalError("backing references unknown batch");
  auto& members = batch_it->second.pages;
  members.erase(std::find(members.begin(), members.end(), page));
  if (auto wb_it = wb_.find(entry); wb_it != wb_.end()) {
    // Rewrite of a page whose batch is still staged: the stale copy is
    // coalesced away before it ever costs a remote put.
    ++metrics_.counter("swap.wb.coalesced");
    if (members.empty()) {
      batches_.erase(batch_it);
      if (wb_it->second.in_flight) {
        // Too late to cancel the put; remove the entry once it lands.
        wb_it->second.remove_after = true;
      } else {
        wb_.erase(wb_it);
        ++metrics_.counter("swap.wb.cancelled_batches");
      }
    }
    return Status::Ok();
  }
  if (members.empty()) {
    batches_.erase(batch_it);
    DM_RETURN_IF_ERROR(client_.remove_sync(entry, active_trace_));
  }
  return Status::Ok();
}

Status SwapManager::make_room(std::uint64_t incoming_pages) {
  while (resident_.size() + incoming_pages > config_.resident_pages) {
    DM_RETURN_IF_ERROR(evict_for_space());
  }
  return Status::Ok();
}

Status SwapManager::evict_for_space() {
  // Walk victims in LRU order. Clean pages with a valid swap-cache copy are
  // dropped for free (the copy down-tier is still good); dirty or unbacked
  // pages accumulate into one write-out batch. Clean drops do not end the
  // walk early: stopping at the first clean page would fragment the dirty
  // write-out into tiny batches and destroy the §IV.H clustering (and the
  // Linux baseline's write clustering with it).
  const std::size_t window = current_window();
  std::vector<std::uint64_t> to_write;
  bool freed_any = false;
  while (to_write.size() < window && !lru_.empty()) {
    auto victim = lru_.evict_lru();
    if (!victim) break;
    const std::uint64_t page = *victim;
    const bool clean = dirty_.count(page) == 0 && backed_.count(page) > 0;
    if (clean) {
      resident_.erase(page);
      freed_any = true;
      ++metrics_.counter("swap.clean_drops");
      // Enough frames freed without any I/O? Stop walking.
      if (to_write.empty()) break;
      continue;
    }
    to_write.push_back(page);
  }
  if (to_write.empty()) {
    if (freed_any) return Status::Ok();
    return FailedPreconditionError("nothing resident to evict");
  }
  return write_out_batch(to_write);
}

Status SwapManager::write_out_batch(const std::vector<std::uint64_t>& pages) {
  // Extract the victims' bytes first; the zswap tier (when enabled)
  // absorbs them and only its writebacks continue to the backend.
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> extracted;
  extracted.reserve(pages.size());
  for (std::uint64_t page : pages) {
    auto node = resident_.extract(page);
    dirty_.erase(page);
    extracted.emplace_back(page, std::move(node.mapped()));
  }

  if (config_.cxl_tier != nullptr) {
    // DRAM -> CXL: victims land in the line-addressable pool (spilling its
    // coldest page down to the backend when full). Only pages the pool
    // cannot absorb continue into zswap / the backend below.
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> overflow;
    for (auto& [page, bytes] : extracted) {
      Status demoted = cxl_demote(page, bytes);
      if (demoted.ok()) continue;
      if (demoted.code() == StatusCode::kInternal) return demoted;
      // Pool (or its spill path) unavailable: fall through down-tier.
      ++metrics_.counter("swap.cxl.demote_fallbacks");
      overflow.emplace_back(page, std::move(bytes));
    }
    if (overflow.empty()) return Status::Ok();
    extracted = std::move(overflow);
  }

  if (zswap_) {
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> writeback;
    for (auto& [page, bytes] : extracted) {
      charge(config_.compress_ns);
      auto overflow = zswap_->put(page, bytes);
      if (!overflow.ok()) return overflow.status();
      for (auto& wb : *overflow)
        writeback.emplace_back(wb.page, std::move(wb.bytes));
    }
    if (writeback.empty()) return Status::Ok();
    return store_batch(std::move(writeback));
  }
  return store_batch(std::move(extracted));
}

Status SwapManager::store_batch(
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> pages) {
  // The batch is assembled in the node's send staging pool (paper Fig. 1:
  // the cluster-wide DM send buffer), then handed to the LDMC in one piece.
  auto& sim = client_.service().node().simulator();
  const SimTime batch_started = sim.now();
  std::vector<std::byte> buffer;
  buffer.reserve(pages.size() * kPageBytes);
  BatchInfo batch;
  const mem::EntryId entry = next_batch_++;

  for (auto& [page, bytes] : pages) {

    if (config_.extra_op_overhead > 0) charge(config_.extra_op_overhead);
    Backing info;
    info.batch = entry;
    info.offset = static_cast<std::uint32_t>(buffer.size());
    bool admit = true;
    if (config_.compression != CompressionMode::kOff &&
        config_.compression_admission) {
      // Admission control: probe the prefix entropy; an incompressible
      // page skips the LZ pass and is stored raw (it would have fallen
      // back to raw after burning compress_ns anyway).
      charge(config_.admission_probe_ns);
      const double entropy =
          compress::sample_entropy(bytes, config_.admission_probe_bytes);
      admit = entropy <= config_.admission_max_entropy;
      ++metrics_.counter(admit ? "swap.admit.accept" : "swap.admit.skip");
    }
    if (config_.compression == CompressionMode::kOff) {
      info.length = kPageBytes;
      buffer.insert(buffer.end(), bytes.begin(), bytes.end());
    } else if (!admit) {
      info.compressed = true;
      info.raw = true;
      info.length = kPageBytes;
      buffer.insert(buffer.end(), bytes.begin(), bytes.end());
      metrics_.counter("swap.compressed_bytes") += kPageBytes;
      metrics_.counter("swap.logical_bytes") += kPageBytes;
    } else {
      {
        sim::SpanScope compress_span(spans_, active_trace_,
                                     client_.service().node().id(),
                                     "compress", "compress.page");
        charge(config_.compress_ns);
      }
      auto compressed = compressor_.compress(bytes);
      info.compressed = true;
      info.raw = compressed.is_raw;
      info.length = static_cast<std::uint32_t>(compressed.data.size());
      buffer.insert(buffer.end(), compressed.data.begin(),
                    compressed.data.end());
      metrics_.counter("swap.compressed_bytes") += compressed.bucket;
      metrics_.counter("swap.logical_bytes") += kPageBytes;
    }
    backed_.emplace(page, info);
    batch.pages.push_back(page);
  }
  const std::size_t batch_pages = batch.pages.size();
  batches_.emplace(entry, std::move(batch));

  if (wb_enabled())
    return wb_stage(entry, std::move(buffer), batch_started, batch_pages);

  // Stage the assembled batch; falls back to the local vector if the
  // window exceeds the pool (functional behaviour is identical — the pool
  // models the reserved send-side memory of §IV.B).
  auto& staging = client_.service().node().send_pool();
  staging.reset();
  std::span<const std::byte> outgoing = buffer;
  if (auto staged = staging.stage(buffer.size()); staged.ok()) {
    std::memcpy(staged->data(), buffer.data(), buffer.size());
    outgoing = *staged;
    ++metrics_.counter("swap.batches_staged");
  }
  Status stored = client_.put_sync(entry, outgoing, active_trace_);
  if (!stored.ok()) {
    // Roll back: restore the victims as resident from the staged buffer.
    // (For zswap writebacks "resident" is a safe over-approximation: the
    // pages re-enter the LRU dirty and will be retried.)
    for (std::uint64_t page : batches_.at(entry).pages) {
      const Backing info = backed_.at(page);
      std::vector<std::byte> bytes(kPageBytes);
      if (info.compressed && !info.raw) {
        compress::CompressedPage cp;
        cp.data.assign(buffer.begin() + info.offset,
                       buffer.begin() + info.offset + info.length);
        cp.is_raw = false;
        (void)compressor_.decompress(cp, bytes);
      } else {
        std::memcpy(bytes.data(), buffer.data() + info.offset, info.length);
      }
      resident_.emplace(page, std::move(bytes));
      lru_.touch(page);
      dirty_.insert(page);  // still unbacked down-tier
      backed_.erase(page);
    }
    batches_.erase(entry);
    return stored;
  }
  ++swap_outs_;
  if (auto loc = client_.map().lookup(entry); loc.ok() && loc->degraded) {
    // Degraded-mode store (§IV.D hardening): the batch is durable but below
    // its intended placement — remote with a short replica set, or pushed
    // to disk because remote memory was unreachable. The repair service
    // restores the placement in the background; swapping continues.
    ++metrics_.counter("swap.degraded_batches");
  }
  metrics_.counter("swap.swapped_out_pages") += batch_pages;
  // Compression + staging + replicated store, end to end for one window.
  metrics_.histogram("swap.swapout_ns")
      .record(static_cast<std::uint64_t>(sim.now() - batch_started));

  if (config_.disk_backup) {
    // Asynchronous full-page backup writes (Infiniswap durability path);
    // they queue on the disk but do not block the fault path.
    auto& disk = client_.service().node().disk();
    for (std::size_t i = 0; i < batch_pages; ++i) {
      if (backup_cursor_ + kPageBytes > disk.capacity())
        backup_cursor_ = disk.capacity() / 2;
      std::vector<std::byte> copy(kPageBytes);
      (void)disk.write(backup_cursor_, copy, {});
      backup_cursor_ += kPageBytes;
      ++metrics_.counter("swap.backup_writes");
    }
  }
  return Status::Ok();
}

Status SwapManager::wb_stage(mem::EntryId entry,
                             std::vector<std::byte> buffer,
                             SimTime batch_started, std::size_t batch_pages) {
  auto& sim = client_.service().node().simulator();
  WbBatch staged;
  staged.buffer = std::move(buffer);
  wb_.emplace(entry, std::move(staged));
  wb_order_.push_back(entry);
  ++metrics_.counter("swap.wb.staged");
  // The pages left residency: the swap-out happened from the paging
  // layer's point of view, even though the put is deferred.
  ++swap_outs_;
  metrics_.counter("swap.swapped_out_pages") += batch_pages;
  metrics_.histogram("swap.swapout_ns")
      .record(static_cast<std::uint64_t>(sim.now() - batch_started));

  // Deadline flush: the batch goes out within writeback_flush_delay even
  // if no pressure builds (bounds the crash-exposure window).
  auto alive = alive_;
  sim.schedule_after(config_.writeback_flush_delay,
                     [this, alive, entry]() {
                       if (!*alive) return;
                       wb_flush_entry(entry);
                     });

  // Bounded buffer: when the bound is exceeded, push the oldest staged
  // batch out and wait until the buffer is back under it.
  while (wb_.size() > config_.writeback_batches) {
    for (mem::EntryId id : wb_order_) {
      auto it = wb_.find(id);
      if (it != wb_.end() && !it->second.in_flight) {
        wb_flush_entry(id);
        break;
      }
    }
    if (wb_inflight_ == 0) break;  // nothing to wait for
    Status drained = client_.drain_until([this]() {
      return wb_.size() <= config_.writeback_batches || wb_inflight_ == 0;
    });
    DM_RETURN_IF_ERROR(drained);
    // Flush failures are deferred to the next safe point; the failed
    // batches already left wb_, so the bound is honoured either way.
  }
  // Lazy prune of stale flush-order ids.
  while (!wb_order_.empty() && wb_.count(wb_order_.front()) == 0)
    wb_order_.pop_front();
  return Status::Ok();
}

void SwapManager::wb_flush_entry(mem::EntryId entry) {
  auto it = wb_.find(entry);
  if (it == wb_.end() || it->second.in_flight) return;
  it->second.in_flight = true;
  ++wb_inflight_;
  ++metrics_.counter("swap.wb.flushes");
  auto alive = alive_;
  client_.put(
      entry, it->second.buffer, [this, alive, entry](const Status& stored) {
        if (!*alive) return;
        --wb_inflight_;
        auto wb_it = wb_.find(entry);
        if (wb_it == wb_.end()) return;
        if (stored.ok()) {
          if (wb_it->second.remove_after) {
            // Every member was rewritten while the put was in flight; the
            // entry is garbage the moment it lands.
            ++metrics_.counter("swap.wb.late_removes");
            client_.remove(entry, [](const Status&) {});
          } else if (auto loc = client_.map().lookup(entry);
                     loc.ok() && loc->degraded) {
            ++metrics_.counter("swap.degraded_batches");
          }
          wb_.erase(wb_it);
          return;
        }
        // Defer the rollback: the page maps may be mid-walk in a fault.
        wb_failures_.push_back(
            {entry, std::move(wb_it->second.buffer), stored});
        wb_.erase(wb_it);
      });
}

Status SwapManager::wb_process_failures() {
  Status first = Status::Ok();
  while (!wb_failures_.empty()) {
    WbFailure failure = std::move(wb_failures_.front());
    wb_failures_.erase(wb_failures_.begin());
    ++metrics_.counter("swap.wb.flush_failures");
    if (first.ok()) first = failure.status;
    auto batch_it = batches_.find(failure.entry);
    if (batch_it == batches_.end()) continue;  // fully coalesced meanwhile
    // The staged copy is the only copy: the put never landed. Every page
    // still backed by this batch returns to resident+dirty (the resident
    // budget may transiently overshoot; the next fault drains it).
    for (std::uint64_t page : batch_it->second.pages) {
      auto backing_it = backed_.find(page);
      if (backing_it == backed_.end() ||
          backing_it->second.batch != failure.entry)
        continue;
      const Backing info = backing_it->second;
      if (resident_.count(page) == 0) {
        std::vector<std::byte> bytes(kPageBytes);
        if (info.compressed && !info.raw) {
          compress::CompressedPage cp;
          cp.data.assign(failure.buffer.begin() + info.offset,
                         failure.buffer.begin() + info.offset + info.length);
          cp.is_raw = false;
          DM_RETURN_IF_ERROR(compressor_.decompress(cp, bytes));
        } else {
          std::memcpy(bytes.data(), failure.buffer.data() + info.offset,
                      info.length);
        }
        resident_.emplace(page, std::move(bytes));
        lru_.touch(page);
      }
      dirty_.insert(page);
      backed_.erase(backing_it);
    }
    batches_.erase(batch_it);
  }
  return first;
}

Status SwapManager::wb_barrier() {
  if (!wb_enabled()) return Status::Ok();
  Status first = wb_process_failures();
  while (!wb_.empty() || !wb_failures_.empty()) {
    for (mem::EntryId id : std::vector<mem::EntryId>(wb_order_.begin(),
                                                     wb_order_.end())) {
      auto it = wb_.find(id);
      if (it != wb_.end() && !it->second.in_flight) wb_flush_entry(id);
    }
    if (wb_inflight_ > 0) {
      Status drained =
          client_.drain_until([this]() { return wb_inflight_ == 0; });
      if (!drained.ok()) return drained;
    }
    Status failed = wb_process_failures();
    if (first.ok()) first = failed;
    // A failed flush rolled its pages back to resident+dirty — they will
    // be re-staged by future evictions, not retried here; the barrier
    // reports the failure and leaves the pages safe.
    if (wb_inflight_ == 0 &&
        std::none_of(wb_.begin(), wb_.end(), [](const auto& kv) {
          return !kv.second.in_flight;
        }) &&
        !wb_.empty())
      break;  // only in-flight entries remain and nothing is draining them
    if (!failed.ok() || !first.ok()) {
      if (wb_.empty()) break;
    }
  }
  wb_order_.clear();
  for (const auto& [id, batch] : wb_) wb_order_.push_back(id);
  return first;
}

Status SwapManager::materialize(std::uint64_t page,
                                std::span<const std::byte> stored,
                                const Backing& info) {
  std::vector<std::byte> bytes(kPageBytes);
  if (info.compressed && !info.raw) {
    {
      sim::SpanScope decompress_span(spans_, active_trace_,
                                     client_.service().node().id(),
                                     "compress", "decompress.page");
      charge(config_.decompress_ns);
    }
    compress::CompressedPage cp;
    cp.data.assign(stored.begin(), stored.end());
    cp.is_raw = false;
    DM_RETURN_IF_ERROR(compressor_.decompress(cp, bytes));
  } else {
    if (stored.size() != kPageBytes)
      return DataLossError("raw page has wrong stored size");
    std::memcpy(bytes.data(), stored.data(), kPageBytes);
  }
  resident_.insert_or_assign(page, std::move(bytes));
  lru_.touch(page);
  ++swap_ins_;
  return Status::Ok();
}

Status SwapManager::fault_in_zswap(std::uint64_t page) {
  // Load from the pool BEFORE making room: eviction below may push other
  // pages into zswap and write this very entry back down-tier.
  charge(config_.decompress_ns);
  std::vector<std::byte> bytes(kPageBytes);
  if (!zswap_->take(page, bytes))
    return InternalError("zswap entry vanished during fault");
  DM_RETURN_IF_ERROR(make_room(1));
  // zswap frees the entry on load: the page returns dirty (unbacked).
  resident_.insert_or_assign(page, std::move(bytes));
  dirty_.insert(page);
  lru_.touch(page);
  ++swap_ins_;
  ++metrics_.counter("swap.zswap_hits");
  return Status::Ok();
}

Status SwapManager::fault_in_wb(std::uint64_t page,
                                const std::vector<std::byte>& staged) {
  // Copy first: a flush completion may erase the staged buffer while the
  // decompress/make_room charges below drive the simulator.
  const std::vector<std::byte> buffer = staged;
  const Backing info = backed_.at(page);
  auto batch_it = batches_.find(info.batch);
  if (batch_it == batches_.end())
    return InternalError("staged page references unknown batch");

  std::vector<std::uint64_t> restore;
  if (config_.proactive_batch_swap_in && !pbs_fanout_suppressed()) {
    for (std::uint64_t member : batch_it->second.pages)
      if (resident_.count(member) == 0) restore.push_back(member);
    ++metrics_.counter("swap.pbs_batch_ins");
  } else {
    restore.push_back(page);
    ++metrics_.counter("swap.single_page_ins");
  }
  DM_RETURN_IF_ERROR(make_room(restore.size()));
  for (std::uint64_t member : restore) {
    const Backing member_info = backed_.at(member);
    DM_RETURN_IF_ERROR(materialize(
        member,
        std::span<const std::byte>(buffer).subspan(member_info.offset,
                                                   member_info.length),
        member_info));
  }
  ++metrics_.counter("swap.wb.hits");
  return Status::Ok();
}

Status SwapManager::fault_in(std::uint64_t page) {
  const Backing info = backed_.at(page);
  auto batch_it = batches_.find(info.batch);
  if (batch_it == batches_.end())
    return InternalError("backed page references unknown batch");

  // Still in the write-back staging buffer: serve straight from DRAM.
  if (wb_enabled()) {
    if (auto wb_it = wb_.find(info.batch); wb_it != wb_.end())
      return fault_in_wb(page, wb_it->second.buffer);
  }

  if (config_.proactive_batch_swap_in && !pbs_fanout_suppressed()) {
    // PBS: fetch the whole batch entry with one disaggregated-memory read
    // and repopulate every non-resident page stored in it. The swap-cache
    // copies stay valid (pages come back clean).
    auto size = client_.stored_size(info.batch);
    if (!size.ok()) return size.status();
    std::vector<std::byte> buffer(*size);
    DM_RETURN_IF_ERROR(client_.get_sync(info.batch, buffer, active_trace_));

    std::vector<std::uint64_t> restore;
    for (std::uint64_t member : batch_it->second.pages)
      if (resident_.count(member) == 0) restore.push_back(member);
    DM_RETURN_IF_ERROR(make_room(restore.size()));
    if (config_.extra_op_overhead > 0)
      charge(config_.extra_op_overhead *
             static_cast<SimTime>(restore.size()));
    for (std::uint64_t member : restore) {
      const Backing member_info = backed_.at(member);
      DM_RETURN_IF_ERROR(materialize(
          member,
          std::span<const std::byte>(buffer).subspan(member_info.offset,
                                                     member_info.length),
          member_info));
    }
    ++metrics_.counter("swap.pbs_batch_ins");
    return Status::Ok();
  }

  // Non-PBS (or adaptive fan-out suppressed under random access): the
  // batch is still the unit of storage (one §IV.H message holds the
  // window), so the fault fetches the batch entry but restores only the
  // faulted page — its siblings stay down-tier and each pays the same
  // fetch again on its own fault. This is exactly the waste PBS removes.
  // Batches of one page degenerate to a cheap sub-read.
  if (config_.extra_op_overhead > 0) charge(config_.extra_op_overhead);
  if (batch_it->second.pages.size() > 1) {
    auto size = client_.stored_size(info.batch);
    if (!size.ok()) return size.status();
    std::vector<std::byte> buffer(*size);
    DM_RETURN_IF_ERROR(client_.get_sync(info.batch, buffer, active_trace_));
    DM_RETURN_IF_ERROR(make_room(1));
    DM_RETURN_IF_ERROR(materialize(
        page,
        std::span<const std::byte>(buffer).subspan(info.offset, info.length),
        info));
  } else {
    std::vector<std::byte> stored(info.length);
    DM_RETURN_IF_ERROR(client_.get_range_sync(info.batch, info.offset,
                                              stored, active_trace_));
    DM_RETURN_IF_ERROR(make_room(1));
    DM_RETURN_IF_ERROR(materialize(page, stored, info));
  }
  ++metrics_.counter("swap.single_page_ins");
  return Status::Ok();
}

Status SwapManager::flush_all() {
  if (wb_enabled()) (void)wb_process_failures();
  while (!resident_.empty()) {
    DM_RETURN_IF_ERROR(evict_for_space());
  }
  // Drain the CXL pool too: a cold restart loses the coherence-layer
  // caches, so every pooled page must reach the durable backend.
  if (config_.cxl_tier != nullptr) {
    while (config_.cxl_tier->used() > 0) DM_RETURN_IF_ERROR(cxl_spill_coldest());
  }
  // Crash-consistency barrier: Fig 9's cold restart (and any recovery
  // scenario) must find every page durable down-tier, not staged in DRAM.
  if (wb_enabled()) DM_RETURN_IF_ERROR(wb_barrier());
  return Status::Ok();
}

StatusOr<std::span<const std::byte>> SwapManager::resident_bytes(
    std::uint64_t page) const {
  auto it = resident_.find(page);
  if (it == resident_.end()) return NotFoundError("page not resident");
  return std::span<const std::byte>(it->second);
}

}  // namespace dm::swap
