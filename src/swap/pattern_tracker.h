// Access-pattern tracking for the adaptive swap path (§IV.H hardening).
//
// Leap-style classification (Maruf & Chowdhury): the tracker keeps the
// deltas between recent fault addresses and labels the stream
//
//   sequential  — a dominant fraction of deltas are +1 page, OR a dominant
//                 fraction are small positive strides (<= max_stride).
//                 The second rule matters under PBS: batch swap-in
//                 subsamples a sequential scan at batch boundaries, so the
//                 *fault* stream shows mixed deltas of 1..window even
//                 though the access stream is perfectly sequential.
//   strided     — a dominant fraction share one non-unit stride
//   random      — no dominant delta and no forward stream
//   unknown     — too few samples to call (cold start)
//
// The AdaptiveWindow consumes one classification per fault and sizes the
// swap-out window / swap-in fan-out with hysteresis: it takes `hysteresis`
// consecutive sequential calls to double the window and the same number of
// random calls to halve it, so a single stray fault cannot thrash the
// policy. Both classes are pure state machines — no clock, no I/O — which
// is what lets the model checker in tests/model_test.cc replay them as the
// oracle's reference policy.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace dm::swap {

enum class AccessPattern { kUnknown, kSequential, kStrided, kRandom };

std::string_view to_string(AccessPattern pattern) noexcept;

class PatternTracker {
 public:
  // `history` is the number of recent deltas considered (>= 2).
  // `max_stride` bounds the deltas the forward-streaming rule accepts as
  // sequential (natural choice: the maximum swap-in window).
  explicit PatternTracker(std::size_t history = 32,
                          std::int64_t max_stride = 32);

  // Records one fault address (page number).
  void record(std::uint64_t page);

  // Classifies the recorded stream. kUnknown until `min_samples()` deltas
  // have been seen.
  AccessPattern classify() const;

  // The plurality delta behind a kSequential/kStrided verdict (for a
  // forward-stream sequential verdict this is the most common positive
  // delta, not necessarily 1); 0 when the stream is random or unknown.
  std::int64_t dominant_stride() const;

  std::size_t samples() const noexcept { return full_ ? deltas_.size() : head_; }
  std::size_t min_samples() const noexcept { return kMinSamples; }

 private:
  static constexpr std::size_t kMinSamples = 8;
  // A pattern needs this fraction of recent deltas to win.
  static constexpr double kDominance = 0.7;

  std::vector<std::int64_t> deltas_;  // ring buffer
  std::int64_t max_stride_;
  std::size_t head_ = 0;
  bool full_ = false;
  std::uint64_t last_page_ = 0;
  bool has_last_ = false;
};

class AdaptiveWindow {
 public:
  struct Config {
    std::size_t min_pages = 1;
    std::size_t max_pages = 32;
    std::size_t start_pages = 8;
    // Consecutive same-direction classifications required before resizing.
    std::size_t hysteresis = 4;
  };

  explicit AdaptiveWindow(Config config);

  // Feeds one per-fault classification; returns the (possibly resized)
  // window. Sequential grows (x2 up to max), random shrinks (/2 down to
  // min); strided holds the window but breaks both streaks; unknown is
  // inert.
  std::size_t update(AccessPattern pattern);

  std::size_t current() const noexcept { return window_; }

 private:
  Config config_;
  std::size_t window_;
  std::size_t grow_streak_ = 0;
  std::size_t shrink_streak_ = 0;
};

}  // namespace dm::swap
