#include "swap/pattern_tracker.h"

#include <algorithm>
#include <unordered_map>

namespace dm::swap {

std::string_view to_string(AccessPattern pattern) noexcept {
  switch (pattern) {
    case AccessPattern::kUnknown: return "unknown";
    case AccessPattern::kSequential: return "sequential";
    case AccessPattern::kStrided: return "strided";
    case AccessPattern::kRandom: return "random";
  }
  return "?";
}

PatternTracker::PatternTracker(std::size_t history, std::int64_t max_stride)
    : deltas_(std::max<std::size_t>(history, 2)),
      max_stride_(std::max<std::int64_t>(max_stride, 1)) {}

void PatternTracker::record(std::uint64_t page) {
  if (has_last_) {
    deltas_[head_] = static_cast<std::int64_t>(page) -
                     static_cast<std::int64_t>(last_page_);
    head_ = (head_ + 1) % deltas_.size();
    if (head_ == 0) full_ = true;
  }
  last_page_ = page;
  has_last_ = true;
}

AccessPattern PatternTracker::classify() const {
  const std::size_t n = samples();
  if (n < kMinSamples) return AccessPattern::kUnknown;

  std::unordered_map<std::int64_t, std::size_t> freq;
  std::int64_t best_delta = 0;
  std::size_t best_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t d = deltas_[i];
    const std::size_t count = ++freq[d];
    if (count > best_count) {
      best_count = count;
      best_delta = d;
    }
  }
  const double dominance =
      static_cast<double>(best_count) / static_cast<double>(n);
  if (dominance >= kDominance && best_delta != 0)
    return best_delta == 1 ? AccessPattern::kSequential
                           : AccessPattern::kStrided;
  // No single delta dominates — check for a forward stream. PBS subsamples
  // a sequential scan at batch boundaries (the intervening pages never
  // fault), so the fault deltas are a mix of small positive strides.
  std::size_t forward = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (deltas_[i] >= 1 && deltas_[i] <= max_stride_) ++forward;
  if (static_cast<double>(forward) / static_cast<double>(n) >= kDominance)
    return AccessPattern::kSequential;
  return AccessPattern::kRandom;
}

std::int64_t PatternTracker::dominant_stride() const {
  switch (classify()) {
    case AccessPattern::kSequential:
    case AccessPattern::kStrided: break;
    default: return 0;
  }
  const std::size_t n = samples();
  std::unordered_map<std::int64_t, std::size_t> freq;
  std::int64_t best_delta = 0;
  std::size_t best_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t count = ++freq[deltas_[i]];
    if (count > best_count) {
      best_count = count;
      best_delta = deltas_[i];
    }
  }
  return best_delta;
}

AdaptiveWindow::AdaptiveWindow(Config config)
    : config_(config),
      window_(std::clamp(config.start_pages, config.min_pages,
                         config.max_pages)) {}

std::size_t AdaptiveWindow::update(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::kSequential:
      shrink_streak_ = 0;
      if (++grow_streak_ >= config_.hysteresis) {
        grow_streak_ = 0;
        window_ = std::min(window_ * 2, config_.max_pages);
      }
      break;
    case AccessPattern::kRandom:
      grow_streak_ = 0;
      if (++shrink_streak_ >= config_.hysteresis) {
        shrink_streak_ = 0;
        window_ = std::max(window_ / 2, config_.min_pages);
      }
      break;
    case AccessPattern::kStrided:
      // A real pattern, but fetching +1 neighbours does not serve it;
      // hold the window and break both streaks.
      grow_streak_ = 0;
      shrink_streak_ = 0;
      break;
    case AccessPattern::kUnknown:
      break;
  }
  return window_;
}

}  // namespace dm::swap
