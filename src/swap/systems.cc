#include "swap/systems.h"

#include <cstdio>

namespace dm::swap {

std::string_view to_string(SystemKind kind) noexcept {
  switch (kind) {
    case SystemKind::kFastSwap: return "FastSwap";
    case SystemKind::kFastSwapNoPbs: return "FastSwap-noPBS";
    case SystemKind::kInfiniswap: return "Infiniswap";
    case SystemKind::kNbdx: return "NBDX";
    case SystemKind::kLinux: return "Linux";
    case SystemKind::kZswap: return "Zswap";
    case SystemKind::kFastSwapAdaptive: return "FastSwap-Adaptive";
  }
  return "?";
}

SystemSetup make_system(SystemKind kind, std::uint64_t resident_pages) {
  SystemSetup setup;
  setup.name = to_string(kind);
  setup.swap.resident_pages = resident_pages;
  // The measured prototypes run unreplicated; the replication ablation
  // bench raises this to 2 and 3.
  setup.service.rdmc.replication = 1;

  switch (kind) {
    case SystemKind::kFastSwap:
      setup.ldmc.shm_fraction = 1.0;
      setup.swap.batch_pages = 8;
      setup.swap.proactive_batch_swap_in = true;
      setup.swap.compression = CompressionMode::kFourGranularity;
      break;
    case SystemKind::kFastSwapNoPbs:
      setup.ldmc.shm_fraction = 1.0;
      setup.swap.batch_pages = 8;
      setup.swap.proactive_batch_swap_in = false;
      setup.swap.compression = CompressionMode::kFourGranularity;
      break;
    case SystemKind::kInfiniswap:
      setup.ldmc.shm_fraction = 0.0;  // no node-level shared pool
      // Infiniswap runs under the normal kernel swap path, so it inherits
      // write clustering and page-cluster readahead (batch of 8)...
      setup.swap.batch_pages = 8;
      setup.swap.proactive_batch_swap_in = true;
      setup.swap.compression = CompressionMode::kOff;
      setup.swap.disk_backup = true;
      // ...but every 4 KiB page still traverses the block layer + nbd
      // request path individually (no message coalescing on the wire).
      setup.swap.extra_op_overhead = 8 * kMicro;
      break;
    case SystemKind::kNbdx:
      setup.ldmc.shm_fraction = 0.0;
      setup.swap.batch_pages = 8;
      setup.swap.proactive_batch_swap_in = true;
      setup.swap.compression = CompressionMode::kOff;
      setup.swap.extra_op_overhead = 6 * kMicro;  // leaner than Infiniswap
      break;
    case SystemKind::kLinux:
      setup.ldmc.shm_fraction = 0.0;
      setup.ldmc.allow_remote = false;  // disk only
      // Linux clusters swap-out writes and reads ahead page-cluster (2^3)
      // pages on swap-in; modeling both keeps the baseline honest.
      setup.swap.batch_pages = 8;
      setup.swap.proactive_batch_swap_in = true;
      setup.swap.compression = CompressionMode::kOff;
      break;
    case SystemKind::kZswap: {
      // Linux swap plus the zswap compressed RAM cache. The pool takes 20%
      // of the DRAM budget (the kernel's max_pool_percent default), so the
      // resident set shrinks by the same amount — a fair comparison.
      setup.ldmc.shm_fraction = 0.0;
      setup.ldmc.allow_remote = false;
      setup.swap.batch_pages = 8;
      setup.swap.proactive_batch_swap_in = true;
      setup.swap.compression = CompressionMode::kOff;  // pool compresses
      const std::uint64_t pool_pages = resident_pages / 5;
      setup.swap.zswap_pool_bytes = pool_pages * 4096;
      setup.swap.resident_pages = resident_pages - pool_pages;
      break;
    }
    case SystemKind::kFastSwapAdaptive:
      setup.ldmc.shm_fraction = 1.0;
      setup.swap.batch_pages = 8;  // adaptive starting window
      setup.swap.proactive_batch_swap_in = true;
      setup.swap.compression = CompressionMode::kFourGranularity;
      setup.swap.adaptive_pbs = true;
      setup.swap.compression_admission = true;
      setup.swap.writeback_batches = 4;
      break;
  }
  return setup;
}

SystemSetup make_fastswap_ratio(double shm_fraction,
                                std::uint64_t resident_pages) {
  SystemSetup setup = make_system(SystemKind::kFastSwap, resident_pages);
  setup.ldmc.shm_fraction = shm_fraction;
  char name[32];
  if (shm_fraction >= 1.0) {
    std::snprintf(name, sizeof(name), "FS-SM");
  } else if (shm_fraction <= 0.0) {
    std::snprintf(name, sizeof(name), "FS-RDMA");
  } else {
    std::snprintf(name, sizeof(name), "FS-%d:%d",
                  static_cast<int>(shm_fraction * 10.0 + 0.5),
                  static_cast<int>((1.0 - shm_fraction) * 10.0 + 0.5));
  }
  setup.name = name;
  return setup;
}

}  // namespace dm::swap
