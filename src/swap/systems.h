// Preset configurations for the swapping systems compared in the paper's
// evaluation (§V.A, Figures 6–9).
//
// Each preset fixes (a) the LDMC routing policy — which tiers this system
// may use and in what ratio, (b) the SwapManager mechanics — batching, PBS,
// compression, backup, per-op overheads, and (c) the node-service knobs —
// notably the replication factor (the research prototypes the paper
// measures do not replicate; the ablation bench sweeps factors 1–3).
//
// FS-SM / FS-9:1 / FS-7:3 / FS-5:5 / FS-RDMA (Fig 8) are FastSwap with the
// shared-memory fraction pinned to 1.0 / 0.9 / 0.7 / 0.5 / 0.0.
#pragma once

#include <string>

#include "core/node_service.h"
#include "swap/swap_manager.h"

namespace dm::swap {

enum class SystemKind {
  kFastSwap,       // shm + remote + disk, batching, PBS, 4-gran compression
  kFastSwapNoPbs,  // FastSwap without proactive batch swap-in
  kInfiniswap,     // remote paging, per-page, async disk backup
  kNbdx,           // raw RDMA block device, per-page
  kLinux,          // disk swap only
  kZswap,          // compressed RAM cache (zbud) in front of disk swap
  // FastSwap plus the adaptive swap-path engine: pattern-aware PBS window
  // and fan-out, entropy-probe compression admission, and write-back
  // staging in front of the LDMC.
  kFastSwapAdaptive,
};

std::string_view to_string(SystemKind kind) noexcept;

struct SystemSetup {
  std::string name;
  core::LdmcOptions ldmc;
  SwapManager::Config swap;
  core::NodeService::Config service;
};

// `resident_pages` is the virtual server's DRAM budget in pages (the 75% /
// 50% configurations of §V pick it as a fraction of the working set).
SystemSetup make_system(SystemKind kind, std::uint64_t resident_pages);

// FastSwap with the node-level : cluster-level distribution ratio pinned
// (Fig 8). shm_fraction = 1.0 is FS-SM, 0.0 is FS-RDMA.
SystemSetup make_fastswap_ratio(double shm_fraction,
                                std::uint64_t resident_pages);

}  // namespace dm::swap
