// Transparent swapping over disaggregated memory — FastSwap and baselines
// (paper §IV.H, §V.A).
//
// SwapManager models the guest-OS paging path of one virtual server: a
// resident set of real 4 KiB pages bounded by `resident_pages` (the paper's
// "75% / 50% configuration" = resident budget as a fraction of working
// set), an LRU victim policy, and a pluggable back end — the server's LDMC,
// whose policy knobs select the system under test:
//
//   FastSwap        shm-first LDMC, multi-granularity compression,
//                   window-based batch swap-out, proactive batch swap-in
//   FastSwap w/o PBS  same, but a fault brings in only the faulted page
//   Infiniswap      remote-only LDMC (no node-level pool), per-page
//                   messages, no compression, async whole-page disk backup
//   NBDX            like Infiniswap plus the block-I/O-stack tax per op
//   Linux           disk-only LDMC, per-page, no compression
//
// Batching (§IV.H): swap-out packs up to `batch_pages` dirty victim pages
// (compressed) into ONE disaggregated-memory entry, so one RDMA message
// carries the window. PBS makes a fault fetch that whole entry back and
// repopulate every page in it — this is why Memcached recovers to peak
// throughput quickly in Fig 9.
//
// Swap-cache semantics (as in the kernel): a page restored from
// disaggregated memory stays *backed* — evicting it again while clean is
// free, and only a write invalidates the down-tier copy. Without this,
// batch swap-in would penalize steady-state random access by rewriting
// unmodified pages on every eviction.
//
// All data is real: page contents come from the workload's content
// generator, travel compressed through the tiers, and are checksum-checked
// by the test suite when they return.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/lru.h"
#include "common/metrics.h"
#include "compress/page_compressor.h"
#include "core/ldmc.h"
#include "swap/zswap_cache.h"

namespace dm::swap {

inline constexpr std::size_t kPageBytes = compress::kPageSize;

enum class CompressionMode { kOff, kTwoGranularity, kFourGranularity };

// Fills `out` (4 KiB) with the contents of `page` — deterministic per page.
using PageContentFn =
    std::function<void(std::uint64_t page, std::span<std::byte> out)>;

class SwapManager {
 public:
  struct Config {
    std::uint64_t resident_pages = 1024;
    std::size_t batch_pages = 8;  // swap-out window d (1 = per-page)
    bool proactive_batch_swap_in = true;
    CompressionMode compression = CompressionMode::kFourGranularity;
    // CPU cost of (de)compressing one 4 KiB page (LZO-class speeds).
    SimTime compress_ns = 1 * kMicro;
    SimTime decompress_ns = 500;
    // Infiniswap-style asynchronous whole-page disk backup on swap-out.
    bool disk_backup = false;
    // Block-I/O-stack tax charged per swapped *page* (bio submission, nbd
    // request path) on both swap-out and swap-in. Zero for FastSwap (its
    // data path bypasses the block layer entirely) and for the rotational
    // disk (seek time dwarfs it).
    SimTime extra_op_overhead = 0;
    // Zswap: size of the in-DRAM compressed cache in front of the backend
    // (0 = disabled). Pages evicted from the pool are written back through
    // the normal store path.
    std::uint64_t zswap_pool_bytes = 0;
  };

  SwapManager(core::Ldmc& client, Config config, PageContentFn content);

  // Touches one page of the working set; swaps in/out as needed. This is
  // synchronous: it drives the simulator until the fault completes, so the
  // caller reads elapsed virtual time off the simulator clock.
  Status touch(std::uint64_t page, bool write = false);

  // Evicts every resident page (cold-start scenarios, e.g. Fig 9's
  // post-flush recovery measurement).
  Status flush_all();

  bool is_resident(std::uint64_t page) const {
    return resident_.count(page) > 0;
  }
  std::uint64_t resident_count() const noexcept { return resident_.size(); }

  // Direct read of a resident page's bytes (tests verify integrity).
  StatusOr<std::span<const std::byte>> resident_bytes(
      std::uint64_t page) const;

  std::uint64_t faults() const noexcept { return faults_; }
  std::uint64_t swap_ins() const noexcept { return swap_ins_; }
  std::uint64_t swap_outs() const noexcept { return swap_outs_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }

  core::Ldmc& client() noexcept { return client_; }

 private:
  struct Backing {
    mem::EntryId batch = 0;
    std::uint32_t offset = 0;  // byte offset within the batch entry
    std::uint32_t length = 0;  // stored bytes
    bool compressed = false;
    bool raw = false;  // stored uncompressed inside a compressed batch
  };
  struct BatchInfo {
    std::vector<std::uint64_t> pages;  // pages still stored in this entry
  };

  Status fault_in(std::uint64_t page);
  Status fault_in_zswap(std::uint64_t page);
  Status make_room(std::uint64_t incoming_pages);
  Status evict_for_space();
  Status write_out_batch(const std::vector<std::uint64_t>& pages);
  // Stores already-extracted (page, raw bytes) pairs as one batch entry.
  Status store_batch(std::vector<std::pair<std::uint64_t,
                                           std::vector<std::byte>>> pages);
  Status invalidate_backing(std::uint64_t page);
  Status materialize(std::uint64_t page, std::span<const std::byte> stored,
                     const Backing& info);
  void charge(SimTime cost);

  core::Ldmc& client_;
  Config config_;
  PageContentFn content_;
  compress::PageCompressor compressor_;
  std::optional<ZswapCache> zswap_;

  std::unordered_map<std::uint64_t, std::vector<std::byte>> resident_;
  std::unordered_set<std::uint64_t> dirty_;
  LruTracker<std::uint64_t> lru_;  // resident pages only
  // Swap-cache: pages with a valid stored copy (may also be resident).
  std::unordered_map<std::uint64_t, Backing> backed_;
  std::unordered_map<mem::EntryId, BatchInfo> batches_;
  mem::EntryId next_batch_ = 1;
  std::uint64_t backup_cursor_ = 0;

  std::uint64_t faults_ = 0;
  std::uint64_t swap_ins_ = 0;
  std::uint64_t swap_outs_ = 0;
  MetricsRegistry metrics_;
};

}  // namespace dm::swap
