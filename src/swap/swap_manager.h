// Transparent swapping over disaggregated memory — FastSwap and baselines
// (paper §IV.H, §V.A).
//
// SwapManager models the guest-OS paging path of one virtual server: a
// resident set of real 4 KiB pages bounded by `resident_pages` (the paper's
// "75% / 50% configuration" = resident budget as a fraction of working
// set), an LRU victim policy, and a pluggable back end — the server's LDMC,
// whose policy knobs select the system under test:
//
//   FastSwap        shm-first LDMC, multi-granularity compression,
//                   window-based batch swap-out, proactive batch swap-in
//   FastSwap w/o PBS  same, but a fault brings in only the faulted page
//   Infiniswap      remote-only LDMC (no node-level pool), per-page
//                   messages, no compression, async whole-page disk backup
//   NBDX            like Infiniswap plus the block-I/O-stack tax per op
//   Linux           disk-only LDMC, per-page, no compression
//
// Batching (§IV.H): swap-out packs up to `batch_pages` dirty victim pages
// (compressed) into ONE disaggregated-memory entry, so one RDMA message
// carries the window. PBS makes a fault fetch that whole entry back and
// repopulate every page in it — this is why Memcached recovers to peak
// throughput quickly in Fig 9.
//
// Swap-cache semantics (as in the kernel): a page restored from
// disaggregated memory stays *backed* — evicting it again while clean is
// free, and only a write invalidates the down-tier copy. Without this,
// batch swap-in would penalize steady-state random access by rewriting
// unmodified pages on every eviction.
//
// Adaptive swap-path engine (all knobs default-off, so the baselines above
// stay byte-identical):
//
//  * adaptive_pbs — a PatternTracker classifies the fault-address stream
//    (sequential / strided / random) and an AdaptiveWindow resizes the
//    swap-out window with hysteresis: sequential streams grow it toward
//    max_batch_pages, random streams shrink it toward min_batch_pages. On
//    the swap-in side a random verdict suppresses the PBS fan-out to the
//    single faulted page (fetching a batch of unrelated victims would only
//    pollute the resident set).
//  * compression_admission — an entropy probe over the first
//    admission_probe_bytes of each victim page skips the LZ pass outright
//    for incompressible pages (they would be stored raw anyway; the probe
//    saves the compress_ns CPU burn).
//  * writeback_batches — a bounded write-back staging buffer in front of
//    the LDMC: swap-out batches are staged in DRAM, flushed asynchronously
//    in sim-time (or synchronously when the bound is exceeded), and a
//    fault on a staged page is served straight from the buffer. A page
//    rewritten while its batch is still staged is coalesced — if a whole
//    batch is invalidated before its flush, the remote put is skipped
//    entirely. wb_barrier() (called by flush_all) is the crash-consistency
//    point: it drains every staged batch, and a failed flush rolls its
//    pages back to resident+dirty, so no acknowledged page is ever lost.
//
// All data is real: page contents come from the workload's content
// generator, travel compressed through the tiers, and are checksum-checked
// by the test suite when they return.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/lru.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "compress/page_compressor.h"
#include "core/ldmc.h"
#include "cxl/page_tier.h"
#include "sim/span_sink.h"
#include "swap/pattern_tracker.h"
#include "swap/zswap_cache.h"

namespace dm::swap {

inline constexpr std::size_t kPageBytes = compress::kPageSize;

enum class CompressionMode { kOff, kTwoGranularity, kFourGranularity };

// Fills `out` (4 KiB) with the contents of `page` — deterministic per page.
using PageContentFn =
    std::function<void(std::uint64_t page, std::span<std::byte> out)>;

class SwapManager {
 public:
  struct Config {
    std::uint64_t resident_pages = 1024;
    std::size_t batch_pages = 8;  // swap-out window d (1 = per-page)
    bool proactive_batch_swap_in = true;
    CompressionMode compression = CompressionMode::kFourGranularity;
    // CPU cost of (de)compressing one 4 KiB page (LZO-class speeds).
    SimTime compress_ns = 1 * kMicro;
    SimTime decompress_ns = 500;
    // Infiniswap-style asynchronous whole-page disk backup on swap-out.
    bool disk_backup = false;
    // Block-I/O-stack tax charged per swapped *page* (bio submission, nbd
    // request path) on both swap-out and swap-in. Zero for FastSwap (its
    // data path bypasses the block layer entirely) and for the rotational
    // disk (seek time dwarfs it).
    SimTime extra_op_overhead = 0;
    // Zswap: size of the in-DRAM compressed cache in front of the backend
    // (0 = disabled). Pages evicted from the pool are written back through
    // the normal store path.
    std::uint64_t zswap_pool_bytes = 0;

    // --- adaptive swap-path engine (default-off; see file comment) ------
    // Pattern-aware PBS: adaptive swap-out window + swap-in fan-out.
    bool adaptive_pbs = false;
    std::size_t min_batch_pages = 1;   // adaptive window floor
    std::size_t max_batch_pages = 32;  // adaptive window ceiling
    std::size_t pattern_history = 32;  // fault deltas considered
    std::size_t pattern_hysteresis = 4;  // verdicts needed to resize
    // Compression admission control: entropy probe before the LZ pass.
    bool compression_admission = false;
    std::size_t admission_probe_bytes = 512;
    double admission_max_entropy = 6.8;  // bits/byte; above => store raw
    SimTime admission_probe_ns = 100;    // CPU cost of the probe
    // Write-back staging: max batches held in the buffer (0 = disabled,
    // i.e. write-through as before).
    std::size_t writeback_batches = 0;
    SimTime writeback_flush_delay = 30 * kMicro;  // async flush deadline

    // --- CXL tier (default-off; DESIGN.md §14) --------------------------
    // When set, dirty/unbacked eviction victims demote into this CXL page
    // pool (DRAM -> CXL) before the RDMA/disk backend, a fault on a pooled
    // page is served as a coherent cache-line access instead of a page
    // fault, and a page promotes back to DRAM after cxl_promote_threshold
    // sub-page hits. The pool spills its coldest page to the backend
    // (CXL -> RDMA/disk) when full. Null keeps every baseline
    // byte-identical.
    cxl::CxlPageTier* cxl_tier = nullptr;
    std::uint64_t cxl_promote_threshold = 4;
  };

  SwapManager(core::Ldmc& client, Config config, PageContentFn content);
  ~SwapManager();

  SwapManager(const SwapManager&) = delete;
  SwapManager& operator=(const SwapManager&) = delete;

  // Touches one page of the working set; swaps in/out as needed. This is
  // synchronous: it drives the simulator until the fault completes, so the
  // caller reads elapsed virtual time off the simulator clock.
  Status touch(std::uint64_t page, bool write = false);

  // Evicts every resident page (cold-start scenarios, e.g. Fig 9's
  // post-flush recovery measurement). Ends with a write-back barrier when
  // the staging buffer is enabled.
  Status flush_all();

  // Crash-consistency barrier: flushes every staged write-back batch and
  // waits for the puts to settle. Returns the first flush failure (whose
  // pages have been rolled back to resident+dirty) or Ok. A no-op when
  // write-back staging is disabled.
  Status wb_barrier();

  bool is_resident(std::uint64_t page) const {
    return resident_.count(page) > 0;
  }
  std::uint64_t resident_count() const noexcept { return resident_.size(); }

  // Direct read of a resident page's bytes (tests verify integrity).
  StatusOr<std::span<const std::byte>> resident_bytes(
      std::uint64_t page) const;

  std::uint64_t faults() const noexcept { return faults_; }
  std::uint64_t swap_ins() const noexcept { return swap_ins_; }
  std::uint64_t swap_outs() const noexcept { return swap_outs_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }

  // Causal span sink (not owned; null detaches). When attached, every
  // backend fault opens a fresh trace rooted in a "swap"/"swap.fault" span
  // covering exactly the interval the swap.fault_ns histogram records, and
  // the trace rides the fault's LDMC calls through RPC, fabric and device
  // I/O. Compression/decompression CPU charges get "compress" child spans
  // so the critical-path breakdown separates CPU from the wire.
  void set_span_sink(sim::SpanSink* spans) noexcept { spans_ = spans; }

  // --- adaptive-engine observability (model checker + tests) -----------
  bool is_backed(std::uint64_t page) const {
    return backed_.count(page) > 0;
  }
  std::size_t backed_count() const noexcept { return backed_.size(); }
  bool is_dirty(std::uint64_t page) const { return dirty_.count(page) > 0; }
  // Current swap-out window: the adaptive window when adaptive_pbs is on,
  // the static batch_pages otherwise.
  std::size_t current_window() const noexcept;
  // Last pattern verdict (kUnknown when adaptive_pbs is off).
  AccessPattern current_pattern() const noexcept;
  std::size_t wb_staged_batches() const noexcept { return wb_.size(); }
  std::uint64_t wb_in_flight() const noexcept { return wb_inflight_; }

  // --- CXL tier observability and pressure hook -------------------------
  bool in_cxl(std::uint64_t page) const {
    return config_.cxl_tier != nullptr && config_.cxl_tier->contains(page);
  }
  std::size_t cxl_pooled() const noexcept {
    return config_.cxl_tier != nullptr ? config_.cxl_tier->used() : 0;
  }
  // Harvest-pressure hook: spills the N coldest pool pages down to the
  // backend (e.g. when the pool's host memory is being reclaimed).
  Status shed_cxl(std::size_t pages);

  const Config& config() const noexcept { return config_; }
  core::Ldmc& client() noexcept { return client_; }

 private:
  struct Backing {
    mem::EntryId batch = 0;
    std::uint32_t offset = 0;  // byte offset within the batch entry
    std::uint32_t length = 0;  // stored bytes
    bool compressed = false;
    bool raw = false;  // stored uncompressed inside a compressed batch
  };
  struct BatchInfo {
    std::vector<std::uint64_t> pages;  // pages still stored in this entry
  };
  struct WbBatch {
    std::vector<std::byte> buffer;  // the assembled batch bytes
    bool in_flight = false;         // put issued, completion pending
    bool remove_after = false;      // fully invalidated while in flight
  };
  struct WbFailure {
    mem::EntryId entry = 0;
    std::vector<std::byte> buffer;
    Status status;
  };

  Status fault_in(std::uint64_t page);
  Status fault_in_zswap(std::uint64_t page);
  // Serves a sub-page fault on a CXL-pooled page as a coherent line
  // access; promotes the page back to DRAM once it proves hot. Sets
  // `in_place` when the page stays pooled (no residency change).
  Status fault_in_cxl(std::uint64_t page, bool write, bool& in_place);
  // Demotes one extracted victim into the CXL pool (spilling the coldest
  // pooled page to the backend first when full).
  Status cxl_demote(std::uint64_t page, std::span<const std::byte> bytes);
  Status cxl_spill_coldest();
  // Serves a fault for a page whose batch is still in the write-back
  // staging buffer — no backend I/O at all.
  Status fault_in_wb(std::uint64_t page,
                     const std::vector<std::byte>& staged);
  Status make_room(std::uint64_t incoming_pages);
  Status evict_for_space();
  Status write_out_batch(const std::vector<std::uint64_t>& pages);
  // Stores already-extracted (page, raw bytes) pairs as one batch entry.
  Status store_batch(std::vector<std::pair<std::uint64_t,
                                           std::vector<std::byte>>> pages);
  Status invalidate_backing(std::uint64_t page);
  Status materialize(std::uint64_t page, std::span<const std::byte> stored,
                     const Backing& info);
  void charge(SimTime cost);

  // Adaptive-PBS helpers.
  void observe_fault(std::uint64_t page);
  bool pbs_fanout_suppressed();

  // Write-back staging helpers. Flush completions mutate ONLY wb_ /
  // wb_failures_ / counters; the page maps (resident_, backed_, batches_,
  // lru_, dirty_) are rolled back exclusively at safe points — the top of
  // touch()/flush_all() and inside wb_barrier() — because completions can
  // fire mid-fault while those maps are being walked.
  bool wb_enabled() const noexcept { return config_.writeback_batches > 0; }
  Status wb_stage(mem::EntryId entry, std::vector<std::byte> buffer,
                  SimTime batch_started, std::size_t batch_pages);
  void wb_flush_entry(mem::EntryId entry);
  // Rolls back every deferred flush failure; returns the first failure.
  Status wb_process_failures();

  core::Ldmc& client_;
  Config config_;
  PageContentFn content_;
  compress::PageCompressor compressor_;
  std::optional<ZswapCache> zswap_;
  std::optional<PatternTracker> pattern_;
  std::optional<AdaptiveWindow> window_;

  std::unordered_map<std::uint64_t, std::vector<std::byte>> resident_;
  std::unordered_set<std::uint64_t> dirty_;
  LruTracker<std::uint64_t> lru_;  // resident pages only
  // Swap-cache: pages with a valid stored copy (may also be resident).
  std::unordered_map<std::uint64_t, Backing> backed_;
  std::unordered_map<mem::EntryId, BatchInfo> batches_;
  mem::EntryId next_batch_ = 1;
  std::uint64_t backup_cursor_ = 0;

  // Write-back staging buffer. wb_order_ is the FIFO flush order (it may
  // hold ids of batches that were since flushed or coalesced; stale ids
  // are skipped).
  std::unordered_map<mem::EntryId, WbBatch> wb_;
  std::deque<mem::EntryId> wb_order_;
  std::uint64_t wb_inflight_ = 0;
  std::vector<WbFailure> wb_failures_;
  // Guards the async flush callbacks against a destroyed manager (events
  // may still be queued on the simulator).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  sim::SpanSink* spans_ = nullptr;
  // The trace of the fault currently being served; threads through every
  // LDMC call the fault triggers (kNoTrace outside a traced fault).
  net::TraceId active_trace_ = net::kNoTrace;

  std::uint64_t faults_ = 0;
  std::uint64_t swap_ins_ = 0;
  std::uint64_t swap_outs_ = 0;
  MetricsRegistry metrics_;
};

}  // namespace dm::swap
