#include "swap/zswap_cache.h"

#include "common/status.h"

namespace dm::swap {

StatusOr<std::vector<ZswapCache::Writeback>> ZswapCache::put(
    std::uint64_t page, std::span<const std::byte> bytes) {
  if (bytes.size() != compress::kPageSize)
    return InvalidArgumentError("zswap stores whole pages");
  std::vector<Writeback> writebacks;

  auto compressed = compress::lz_compress(bytes);
  const std::size_t footprint = compress::zswap_zbud_footprint(
      compressed.size());
  if (footprint >= compress::kPageSize || footprint > capacity_) {
    // Poorly compressible (or pool too small to ever hold it): zswap
    // rejects it; it goes straight down-tier.
    ++metrics_.counter("zswap.rejected");
    writebacks.push_back({page, {bytes.begin(), bytes.end()}});
    return writebacks;
  }

  // Make room by writing back the oldest entries (decompressed, since the
  // swap device stores raw pages).
  while (used_ + footprint > capacity_ && !lru_.empty()) {
    const std::uint64_t victim = *lru_.evict_lru();
    auto it = entries_.find(victim);
    Writeback wb;
    wb.page = victim;
    wb.bytes.resize(compress::kPageSize);
    if (auto s = compress::lz_decompress(it->second.compressed, wb.bytes);
        !s.ok())
      return s;
    used_ -= it->second.footprint;
    entries_.erase(it);
    writebacks.push_back(std::move(wb));
    ++metrics_.counter("zswap.writebacks");
  }

  used_ += footprint;
  entries_[page] = Entry{std::move(compressed), footprint};
  lru_.touch(page);
  ++metrics_.counter("zswap.stores");
  return writebacks;
}

bool ZswapCache::take(std::uint64_t page, std::span<std::byte> out) {
  auto it = entries_.find(page);
  if (it == entries_.end()) {
    ++metrics_.counter("zswap.misses");
    return false;
  }
  if (!compress::lz_decompress(it->second.compressed, out).ok()) return false;
  used_ -= it->second.footprint;
  entries_.erase(it);
  lru_.erase(page);
  ++metrics_.counter("zswap.loads");
  return true;
}

void ZswapCache::invalidate(std::uint64_t page) {
  auto it = entries_.find(page);
  if (it == entries_.end()) return;
  used_ -= it->second.footprint;
  entries_.erase(it);
  lru_.erase(page);
}

}  // namespace dm::swap
