// Zswap-style compressed RAM cache (paper §IV.H, Fig 3's baseline).
//
// Zswap intercepts swap-out: pages are LZ-compressed into an in-DRAM zbud
// pool (at most two compressed pages per 4 KiB frame, so the effective
// ratio never exceeds 2.0). When the pool exceeds its budget, the oldest
// entries are written back to the real swap device. Swap-in checks the
// pool first — a hit costs a decompression instead of a disk I/O.
//
// This is the node-local, single-tier ancestor of FastSwap's design: same
// compression idea, but no multi-granularity buckets, no shared pool across
// servers, and no remote tier.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/lru.h"
#include "common/metrics.h"
#include "common/status.h"
#include "compress/page_compressor.h"

namespace dm::swap {

class ZswapCache {
 public:
  explicit ZswapCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  // Compresses and stores a page copy. Returns the pages that had to be
  // written back to make room (their raw bytes, for the disk path). A page
  // whose compressed form does not fit half a frame is rejected (returned
  // in the writeback list as zswap does) rather than stored raw.
  struct Writeback {
    std::uint64_t page;
    std::vector<std::byte> bytes;
  };
  StatusOr<std::vector<Writeback>> put(std::uint64_t page,
                                       std::span<const std::byte> bytes);

  // Decompresses the cached copy into `out` and removes it from the pool
  // (zswap frees the entry on load). Returns false on miss.
  bool take(std::uint64_t page, std::span<std::byte> out);

  bool contains(std::uint64_t page) const { return entries_.count(page) > 0; }
  void invalidate(std::uint64_t page);

  std::uint64_t used_bytes() const noexcept { return used_; }
  std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  std::size_t entry_count() const noexcept { return entries_.size(); }
  MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  struct Entry {
    std::vector<std::byte> compressed;
    std::size_t footprint;  // zbud-charged bytes
  };

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::unordered_map<std::uint64_t, Entry> entries_;
  LruTracker<std::uint64_t> lru_;
  MetricsRegistry metrics_;
};

}  // namespace dm::swap
