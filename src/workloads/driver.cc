#include "workloads/driver.h"

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/simulator.h"
#include "swap/swap_manager.h"
#include "workloads/app_catalog.h"
#include "workloads/page_content.h"

namespace dm::workloads {
namespace {

sim::Simulator& sim_of(swap::SwapManager& memory) {
  return memory.client().service().node().simulator();
}

// One access: charge compute, then touch the page (which may fault).
// Records the end-to-end access latency into the result histogram.
Status access(swap::SwapManager& memory, std::uint64_t page, SimTime cpu_ns,
              bool write, Histogram& latency) {
  auto& sim = sim_of(memory);
  const SimTime start = sim.now();
  sim.run_until(start + cpu_ns);
  Status touched = memory.touch(page, write);
  latency.record(static_cast<std::uint64_t>(sim.now() - start));
  return touched;
}

}  // namespace

swap::PageContentFn content_for(const AppSpec& spec, std::uint64_t seed) {
  const double random_fraction = spec.random_fraction;
  return [random_fraction, seed](std::uint64_t page,
                                 std::span<std::byte> out) {
    fill_page(out, page, random_fraction, seed);
  };
}

RunResult run_iterative(swap::SwapManager& memory, const AppSpec& spec,
                        std::uint64_t pages, Rng& rng) {
  RunResult result;
  auto& sim = sim_of(memory);
  const SimTime start = sim.now();
  const std::uint64_t faults_before = memory.faults();

  ZipfGenerator skew(pages, spec.zipf_theta > 0 ? spec.zipf_theta : 0.5);
  for (int iter = 0; iter < spec.iterations; ++iter) {
    for (std::uint64_t p = 0; p < pages; ++p) {
      std::uint64_t page = p;
      bool write = false;
      if (spec.kind == AppKind::kGraph && spec.zipf_theta > 0 &&
          rng.bernoulli(0.3)) {
        // Graph apps chase skewed neighbour references alongside the sweep.
        page = skew.next(rng);
      }
      // Iterative apps update model/rank state on a fraction of accesses.
      write = rng.bernoulli(0.25);
      result.status = access(memory, page, spec.cpu_ns_per_access, write,
                             result.op_latency);
      if (!result.status.ok()) return result;
      ++result.accesses;
    }
  }
  result.elapsed = sim.now() - start;
  result.faults = memory.faults() - faults_before;
  return result;
}

RunResult run_kv(swap::SwapManager& memory, const AppSpec& spec,
                 std::uint64_t pages, std::uint64_t ops, Rng& rng) {
  RunResult result;
  auto& sim = sim_of(memory);
  const SimTime start = sim.now();
  const std::uint64_t faults_before = memory.faults();

  ZipfGenerator keys(pages, spec.zipf_theta);
  for (std::uint64_t i = 0; i < ops; ++i) {
    // ETC-like mix: ~90% reads.
    const bool write = rng.bernoulli(0.1);
    result.status = access(memory, keys.next(rng), spec.cpu_ns_per_access,
                           write, result.op_latency);
    if (!result.status.ok()) return result;
    ++result.accesses;
  }
  result.elapsed = sim.now() - start;
  result.faults = memory.faults() - faults_before;
  return result;
}

RunResult run_kv_timed(
    swap::SwapManager& memory, const AppSpec& spec, std::uint64_t pages,
    SimTime duration, SimTime window,
    const std::function<void(std::size_t, std::uint64_t)>& on_window,
    Rng& rng) {
  RunResult result;
  auto& sim = sim_of(memory);
  const SimTime start = sim.now();
  const SimTime deadline = start + duration;
  const std::uint64_t faults_before = memory.faults();

  ZipfGenerator keys(pages, spec.zipf_theta);
  std::size_t window_index = 0;
  std::uint64_t window_ops = 0;
  SimTime window_end = start + window;

  while (sim.now() < deadline) {
    const bool write = rng.bernoulli(0.1);
    result.status = access(memory, keys.next(rng), spec.cpu_ns_per_access,
                           write, result.op_latency);
    if (!result.status.ok()) return result;
    ++result.accesses;
    ++window_ops;
    while (sim.now() >= window_end) {
      on_window(window_index, window_ops);
      ++window_index;
      window_ops = 0;
      window_end += window;
    }
  }
  if (window_ops > 0) on_window(window_index, window_ops);
  result.elapsed = sim.now() - start;
  result.faults = memory.faults() - faults_before;
  return result;
}

}  // namespace dm::workloads
