#include "workloads/page_content.h"

#include "common/rng.h"

namespace dm::workloads {

void fill_page(std::span<std::byte> out, std::uint64_t page_id,
               double random_fraction, std::uint64_t seed) {
  Rng rng(mix64(seed ^ (page_id * 0x9e3779b97f4a7c15ULL)));
  constexpr std::size_t kRun = 64;
  // A per-page structured motif: repeating 8-byte stride, as columnar
  // numeric data would look.
  const std::uint64_t motif = rng.next_u64();
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t run = std::min(kRun, out.size() - pos);
    if (rng.next_double() < random_fraction) {
      for (std::size_t i = 0; i < run; ++i)
        out[pos + i] = static_cast<std::byte>(rng.next_u64() & 0xff);
    } else {
      for (std::size_t i = 0; i < run; ++i) {
        const auto shift = (i % 8) * 8;
        out[pos + i] = static_cast<std::byte>((motif >> shift) & 0xff);
      }
    }
    pos += run;
  }
}

}  // namespace dm::workloads
