#include "workloads/app_catalog.h"

#include <array>

namespace dm::workloads {
namespace {

// Compressibility (random_fraction) is calibrated so the Fig 3 spread
// appears: text/graph data compresses well, numeric feature matrices less,
// serialized store values are in between.
constexpr std::array<AppSpec, 10> kApps{{
    {"PageRank", "Spark GraphX", AppKind::kGraph, 28.0, 16.0, 0.18, 0.80, 8,
     450},
    {"LogisticRegression", "Spark MLlib", AppKind::kIterativeMl, 30.0, 20.0,
     0.10, 0.00, 10, 400},
    {"TunkRank", "PowerGraph", AppKind::kGraph, 27.0, 15.0, 0.22, 0.85, 8,
     500},
    {"KMeans", "Spark MLlib", AppKind::kIterativeMl, 26.0, 14.0, 0.14, 0.00,
     10, 420},
    {"SVM", "Spark MLlib", AppKind::kIterativeMl, 29.0, 18.0, 0.12, 0.00, 10,
     430},
    {"ConnectedComponents", "Spark GraphX", AppKind::kGraph, 25.0, 12.0, 0.28,
     0.75, 6, 480},
    {"ALS", "Spark MLlib", AppKind::kIterativeMl, 27.0, 16.0, 0.04, 0.00, 12,
     460},
    {"Redis", "Redis 3.2", AppKind::kKeyValue, 25.0, 12.0, 0.20, 0.99, 0,
     900},
    {"Memcached", "Memcached 1.4 (ETC)", AppKind::kKeyValue, 26.0, 13.0, 0.25,
     0.99, 0, 800},
    {"VoltDB", "VoltDB 6.6", AppKind::kKeyValue, 30.0, 20.0, 0.35, 0.90, 0,
     1500},
}};

}  // namespace

std::span<const AppSpec> app_catalog() { return kApps; }

const AppSpec* find_app(std::string_view name) {
  for (const AppSpec& app : kApps)
    if (app.name == name) return &app;
  return nullptr;
}

}  // namespace dm::workloads
