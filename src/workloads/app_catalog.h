// The ten memory-intensive applications of the paper's Table 1 (§V).
//
// The paper evaluates five iterative analytics workloads (PageRank,
// LogisticRegression, TunkRank, KMeans, SVM — Fig 7), three serving systems
// (Redis, Memcached, VoltDB — Fig 8–9), and the Spark jobs of Fig 10 (LR,
// SVM, KMeans, ConnectedComponents). Working sets are 25–30 GB with
// 12–20 GB inputs per virtual server; the reproduction keeps those numbers
// for the Table 1 printout and scales the simulated page counts down
// proportionally (ratios, not absolute sizes, carry the results).
//
// Per-app knobs that drive behaviour in the reproduction:
//  * random_fraction — page-content compressibility (Fig 3 spread),
//  * zipf_theta      — access skew (0 = pure scan; graph/KV apps are skewed),
//  * iterations      — passes over the working set for iterative apps,
//  * cpu_ns_per_access — compute charged between memory touches.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/units.h"

namespace dm::workloads {

enum class AppKind : std::uint8_t {
  kIterativeMl,  // dense scans per iteration
  kGraph,        // skewed vertex access per iteration
  kKeyValue,     // request-serving, zipfian keys
};

struct AppSpec {
  std::string_view name;
  std::string_view framework;  // as Table 1 reports it
  AppKind kind;
  double working_set_gb;  // paper-scale numbers for the Table 1 printout
  double input_gb;
  double random_fraction;  // page compressibility (lower = more compressible)
  double zipf_theta;       // access skew for graph/KV apps
  int iterations;          // iterative apps: passes over the working set
  SimTime cpu_ns_per_access;
};

// All ten applications, in the paper's order.
std::span<const AppSpec> app_catalog();

// Lookup by name; returns nullptr if unknown.
const AppSpec* find_app(std::string_view name);

}  // namespace dm::workloads
