// Workload drivers: replay an application's memory-access behaviour against
// a SwapManager and measure completion time / throughput in virtual time.
//
// Iterative apps (Fig 4–7): `iterations` passes over a working set of
// `pages` pages. Dense ML apps scan sequentially; graph apps interleave a
// sequential sweep with zipf-skewed vertex jumps. Every access charges the
// app's per-access compute time, so completion time = compute + stalls and
// the stall share grows as the resident fraction shrinks — exactly the 75%
// and 50% configurations of §V.
//
// KV apps (Fig 8–9): a request loop over a zipfian keyspace; each request
// touches the page holding the key. Throughput = requests / virtual time.
// run_kv_timed() additionally samples per-window throughput to produce the
// Fig 9 recovery timeline.
#pragma once

#include <functional>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "swap/swap_manager.h"
#include "workloads/app_catalog.h"

namespace dm::workloads {

struct RunResult {
  SimTime elapsed = 0;
  std::uint64_t accesses = 0;
  std::uint64_t faults = 0;
  Status status;
  // Per-access virtual-time latency distribution (includes fault stalls).
  Histogram op_latency;

  double seconds() const {
    return static_cast<double>(elapsed) / static_cast<double>(kSecond);
  }
  double ops_per_second() const {
    return seconds() > 0 ? static_cast<double>(accesses) / seconds() : 0.0;
  }
};

// Runs an iterative app to completion (spec.iterations passes over `pages`).
RunResult run_iterative(swap::SwapManager& memory, const AppSpec& spec,
                        std::uint64_t pages, Rng& rng);

// Runs `ops` KV requests over a `pages`-page keyspace.
RunResult run_kv(swap::SwapManager& memory, const AppSpec& spec,
                 std::uint64_t pages, std::uint64_t ops, Rng& rng);

// Runs KV requests for `duration` of virtual time; reports completed ops per
// `window` to the callback (window index, ops completed in that window).
RunResult run_kv_timed(
    swap::SwapManager& memory, const AppSpec& spec, std::uint64_t pages,
    SimTime duration, SimTime window,
    const std::function<void(std::size_t, std::uint64_t)>& on_window,
    Rng& rng);

// A PageContentFn for the app (binds compressibility and a seed).
swap::PageContentFn content_for(const AppSpec& spec, std::uint64_t seed);

}  // namespace dm::workloads
