// Synthetic page contents with controllable compressibility.
//
// The paper's compression results (Fig 3–5) depend on how compressible the
// applications' pages are. We reproduce that with real bytes: each 4 KiB
// page is a deterministic function of (page id, seed) mixing 64-byte runs
// of repeating structured data (compressible) with runs of random bytes
// (incompressible), in a configurable proportion. Under the LZSS
// compressor, a random_fraction of r yields a compressed size close to
// r * 4096 + overhead, i.e. an effective ratio near 1/r — so the sweep in
// Fig 4's "4 memory compressibility ratios" maps directly onto r.
#pragma once

#include <cstdint>
#include <span>

namespace dm::workloads {

// Fills `out` (any size, typically 4 KiB). `random_fraction` in [0, 1]:
// 0 = fully structured (compresses to a few %), 1 = incompressible.
void fill_page(std::span<std::byte> out, std::uint64_t page_id,
               double random_fraction, std::uint64_t seed);

}  // namespace dm::workloads
