#include "cxl/page_tier.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "common/status.h"
#include "cxl/coherence.h"

namespace dm::cxl {

CxlPageTier::CxlPageTier(CxlAgent& agent, Config config)
    : agent_(agent), config_(config) {
  assert(config_.page_bytes % kLineBytes == 0);
  lines_per_page_ = config_.page_bytes / kLineBytes;
  // The pool cannot outgrow its slab of the directory region.
  const std::size_t dir_lines = agent_.directory().line_count();
  const std::size_t slab_lines =
      config_.base_line < dir_lines ? dir_lines - config_.base_line : 0;
  capacity_ = std::min(config_.pool_pages, slab_lines / lines_per_page_);
  for (std::size_t i = 0; i < capacity_; ++i) free_slots_.insert(i);
}

std::uint64_t CxlPageTier::touches(std::uint64_t page) const {
  auto it = pages_.find(page);
  return it == pages_.end() ? 0 : it->second.touches;
}

Status CxlPageTier::demote(std::uint64_t page,
                           std::span<const std::byte> bytes,
                           net::TraceId trace) {
  if (bytes.size() != config_.page_bytes)
    return InvalidArgumentError("page size mismatch");
  if (pages_.count(page) > 0)
    return AlreadyExistsError("page already in CXL pool");
  if (free_slots_.empty())
    return ResourceExhaustedError("CXL pool full");
  const std::size_t slot = *free_slots_.begin();
  Status stored =
      agent_.write_region_sync(first_line_of(slot), bytes, trace);
  if (!stored.ok()) return stored;
  free_slots_.erase(free_slots_.begin());
  pages_.emplace(page, Slot{slot, 0});
  lru_.touch(page);
  ++metrics_.counter("cxl.tier.pages_in");
  return Status::Ok();
}

Status CxlPageTier::promote(std::uint64_t page, std::span<std::byte> out,
                            net::TraceId trace) {
  if (out.size() != config_.page_bytes)
    return InvalidArgumentError("page size mismatch");
  auto it = pages_.find(page);
  if (it == pages_.end()) return NotFoundError("page not in CXL pool");
  Status read =
      agent_.read_region_sync(first_line_of(it->second.index), out, trace);
  if (!read.ok()) return read;
  free_slots_.insert(it->second.index);
  pages_.erase(it);
  lru_.erase(page);
  ++metrics_.counter("cxl.tier.pages_out");
  return Status::Ok();
}

Status CxlPageTier::touch_line(std::uint64_t page, std::size_t line_index,
                               bool write, net::TraceId trace) {
  auto it = pages_.find(page);
  if (it == pages_.end()) return NotFoundError("page not in CXL pool");
  const LineId line =
      first_line_of(it->second.index) + (line_index % lines_per_page_);
  std::array<std::byte, kLineBytes> buf{};
  Status loaded = agent_.load_sync(
      line, 0, std::span<std::byte>(buf.data(), buf.size()), trace);
  if (!loaded.ok()) return loaded;
  if (write) {
    // Read-modify-write: the application mutates within the line; the
    // dirty Exclusive copy writes back on demotion, not through.
    Status stored = agent_.store_sync(
        line, 0, std::span<const std::byte>(buf.data(), buf.size()), trace);
    if (!stored.ok()) return stored;
    ++metrics_.counter("cxl.tier.line_writes");
  }
  ++it->second.touches;
  lru_.touch(page);
  ++metrics_.counter("cxl.tier.line_hits");
  return Status::Ok();
}

}  // namespace dm::cxl
