#include "cxl/coherence.h"

#include <cassert>
#include <cstring>

#include "common/status.h"
#include "common/units.h"
#include "net/fabric.h"
#include "sim/simulator.h"
#include "sim/span_sink.h"

namespace dm::cxl {

std::string_view to_string(LineState state) noexcept {
  switch (state) {
    case LineState::kInvalid: return "invalid";
    case LineState::kShared: return "shared";
    case LineState::kExclusive: return "exclusive";
  }
  return "?";
}

// ---- CxlDirectory ----------------------------------------------------------

CxlDirectory::CxlDirectory(net::Fabric& fabric, Config config)
    : fabric_(fabric), config_(config),
      backing_(config.line_count * kLineBytes, std::byte{0}) {
  auto rkey = fabric_.register_memory(config_.home,
                                      std::span<std::byte>(backing_));
  assert(rkey.ok() && "CXL home node must exist in the fabric");
  if (rkey.ok()) rkey_ = *rkey;
}

CxlDirectory::~CxlDirectory() {
  if (rkey_ != net::kInvalidRKey)
    (void)fabric_.deregister_memory(config_.home, rkey_);
}

net::NodeId CxlDirectory::owner_of(LineId line) const {
  auto it = lines_.find(line);
  return it == lines_.end() ? net::kInvalidNode : it->second.owner;
}

std::size_t CxlDirectory::sharer_count(LineId line) const {
  auto it = lines_.find(line);
  return it == lines_.end() ? 0 : it->second.sharers.size();
}

bool CxlDirectory::line_busy(LineId line) const {
  auto it = lines_.find(line);
  return it != lines_.end() && it->second.busy;
}

std::span<const std::byte> CxlDirectory::backing_line(LineId line) const {
  assert(line < config_.line_count);
  return std::span<const std::byte>(backing_.data() + line * kLineBytes,
                                    kLineBytes);
}

CxlDirectory::LineMeta& CxlDirectory::meta(LineId line) {
  assert(line < config_.line_count);
  return lines_[line];
}

void CxlDirectory::lock(LineId line, std::function<void()> fn) {
  auto& m = meta(line);
  if (!m.busy) {
    m.busy = true;
    fn();
    return;
  }
  ++metrics_.counter("cxl.dir.lock_waits");
  m.waiters.push_back(std::move(fn));
}

void CxlDirectory::unlock(LineId line) {
  auto& m = meta(line);
  assert(m.busy);
  if (m.waiters.empty()) {
    m.busy = false;
    return;
  }
  // Hand the lock to the next waiter via the event queue (keeps deep waiter
  // chains off the call stack; busy stays true across the handoff).
  auto next = std::move(m.waiters.front());
  m.waiters.pop_front();
  fabric_.simulator().schedule_after(0, std::move(next));
}

void CxlDirectory::register_agent(CxlAgent* agent) {
  assert(agents_.count(agent->node()) == 0 && "one CXL agent per node");
  agents_[agent->node()] = agent;
}

void CxlDirectory::unregister_agent(CxlAgent* agent) {
  auto it = agents_.find(agent->node());
  if (it != agents_.end() && it->second == agent) agents_.erase(it);
}

CxlAgent* CxlDirectory::agent_on(net::NodeId node) {
  auto it = agents_.find(node);
  return it == agents_.end() ? nullptr : it->second;
}

namespace {
struct SettleState {
  LineId line = 0;
  bool keep_shared = false;
  net::TraceId trace = net::kNoTrace;
  std::vector<net::NodeId> targets;
  std::function<void()> then;
};
}  // namespace

void CxlDirectory::settle_holders(LineId line, net::NodeId requester,
                                  bool keep_shared, net::TraceId trace,
                                  std::function<void()> then) {
  auto& m = meta(line);
  assert(m.busy && "settle_holders requires the line lock");
  auto st = std::make_shared<SettleState>();
  st->line = line;
  st->keep_shared = keep_shared;
  st->trace = trace;
  st->then = std::move(then);
  if (m.owner != net::kInvalidNode && m.owner != requester)
    st->targets.push_back(m.owner);
  if (!keep_shared) {
    for (net::NodeId s : m.sharers)
      if (s != requester && s != m.owner) st->targets.push_back(s);
  }

  // Sequential snoop chain: each hop's completion advances to the next
  // holder. State lives in `st` (no lambda self-capture, so no ref cycles).
  struct Step {
    static void run(CxlDirectory* dir, std::shared_ptr<SettleState> st,
                    std::size_t idx) {
      if (idx >= st->targets.size()) {
        st->then();
        return;
      }
      const net::NodeId holder = st->targets[idx];
      const LineId line = st->line;
      CxlAgent* agent = dir->agent_on(holder);
      auto drop_holder = [dir, line, holder]() {
        auto& mm = dir->meta(line);
        mm.sharers.erase(holder);
        if (mm.owner == holder) mm.owner = net::kInvalidNode;
      };
      if (agent == nullptr) {
        drop_holder();  // stale entry for a departed agent
        run(dir, st, idx + 1);
        return;
      }
      ++dir->metrics_.counter("cxl.dir.snoops");
      Status posted = dir->fabric_.cxl_write(
          dir->config_.home, holder, agent->mailbox_rkey_, 0, {},
          [dir, st, idx, holder, line, drop_holder](const net::Completion& c) {
            CxlAgent* a = dir->agent_on(holder);
            if (!c.status.ok() || a == nullptr) {
              // Holder unreachable: its copy is unrecoverable, the home
              // copy stands. Drop it from the directory and move on.
              drop_holder();
              if (a != nullptr) {
                a->cache_.erase(line);
                a->lru_.erase(line);
              }
              run(dir, st, idx + 1);
              return;
            }
            auto settled = [dir, st, idx, holder, line]() {
              CxlAgent* a2 = dir->agent_on(holder);
              auto& mm = dir->meta(line);
              if (st->keep_shared) {
                ++dir->metrics_.counter("cxl.dir.downgrades");
                if (a2 != nullptr) {
                  if (auto* cl = a2->find(line)) {
                    cl->state = LineState::kShared;
                    cl->dirty = false;
                    cl->settling = false;
                  }
                }
                if (mm.owner == holder) {
                  mm.owner = net::kInvalidNode;
                  mm.sharers.insert(holder);
                }
              } else {
                ++dir->metrics_.counter("cxl.dir.invalidations");
                if (a2 != nullptr) {
                  a2->cache_.erase(line);
                  a2->lru_.erase(line);
                }
                mm.sharers.erase(holder);
                if (mm.owner == holder) mm.owner = net::kInvalidNode;
              }
              run(dir, st, idx + 1);
            };
            CxlAgent::CacheLine* cl = a->find(line);
            // Block fast-path hits from here on: a store landing after the
            // write-back snapshot below would be lost otherwise.
            if (cl != nullptr) cl->settling = true;
            if (cl != nullptr && cl->dirty) {
              ++dir->metrics_.counter("cxl.dir.writebacks");
              Status wb = dir->fabric_.cxl_write(
                  holder, dir->config_.home, dir->rkey_, line * kLineBytes,
                  std::span<const std::byte>(cl->bytes.data(), kLineBytes),
                  [settled](const net::Completion&) { settled(); },
                  st->trace);
              if (!wb.ok()) settled();
              return;
            }
            settled();
          },
          st->trace);
      if (!posted.ok()) {
        drop_holder();
        run(dir, st, idx + 1);
      }
    }
  };
  Step::run(this, std::move(st), 0);
}

// ---- CxlAgent --------------------------------------------------------------

CxlAgent::CxlAgent(CxlDirectory& directory, Config config)
    : dir_(directory), config_(config) {
  auto rkey = dir_.fabric_.register_memory(
      config_.node, std::span<std::byte>(mailbox_.data(), mailbox_.size()));
  assert(rkey.ok() && "CXL agent node must exist in the fabric");
  if (rkey.ok()) mailbox_rkey_ = *rkey;
  dir_.register_agent(this);
}

CxlAgent::~CxlAgent() {
  *alive_ = false;
  dir_.unregister_agent(this);
  if (mailbox_rkey_ != net::kInvalidRKey)
    (void)dir_.fabric_.deregister_memory(config_.node, mailbox_rkey_);
}

CxlAgent::CacheLine* CxlAgent::find(LineId line) {
  auto it = cache_.find(line);
  return it == cache_.end() ? nullptr : &it->second;
}

const CxlAgent::CacheLine* CxlAgent::find(LineId line) const {
  auto it = cache_.find(line);
  return it == cache_.end() ? nullptr : &it->second;
}

bool CxlAgent::hit_ok(const CacheLine* cl, LineState need) const {
  if (cl == nullptr || cl->settling) return false;
  if (need == LineState::kExclusive)
    return cl->state == LineState::kExclusive;
  return cl->state != LineState::kInvalid;
}

LineState CxlAgent::state_of(LineId line) const {
  const CacheLine* cl = find(line);
  return cl == nullptr ? LineState::kInvalid : cl->state;
}

bool CxlAgent::line_dirty(LineId line) const {
  const CacheLine* cl = find(line);
  return cl != nullptr && cl->dirty;
}

void CxlAgent::complete_after(SimTime delay, DoneCallback done,
                              Status status) {
  auto alive = alive_;
  sim().schedule_after(delay, [alive, done = std::move(done),
                               status = std::move(status)]() {
    if (*alive && done) done(status);
  });
}

CxlAgent::DoneCallback CxlAgent::wrap_span(net::TraceId trace,
                                           const char* name,
                                           DoneCallback done) {
  sim::SpanSink* spans = dir_.spans_;
  if (spans == nullptr || trace == net::kNoTrace) return done;
  // dm-lint: allow(span-unclosed) — closed by the wrapped completion.
  const std::uint64_t span =
      spans->begin_span(trace, config_.node, "cxl", name);
  return [spans, span, inner = std::move(done)](const Status& s) {
    spans->end_span(span);
    if (inner) inner(s);
  };
}

void CxlAgent::install(LineId line, LineState state, const std::byte* bytes) {
  CacheLine& cl = cache_[line];
  cl.state = state;
  cl.dirty = false;
  cl.settling = false;
  std::memcpy(cl.bytes.data(), bytes, kLineBytes);
  lru_.touch(line);
  trim_cache();
}

void CxlAgent::load(LineId line, std::uint32_t offset,
                    std::span<std::byte> out, DoneCallback done,
                    net::TraceId trace) {
  assert(offset + out.size() <= kLineBytes);
  ++metrics_.counter("cxl.loads");
  if (config_.store_buffer) {
    // TSO store-to-load forwarding: the youngest same-line buffered store
    // that covers the load supplies the value; a same-line store that only
    // partially overlaps forces a drain first (conservative).
    for (auto it = sb_.rbegin(); it != sb_.rend(); ++it) {
      if (it->line != line) continue;
      if (it->offset <= offset &&
          offset + out.size() <= it->offset + it->data.size()) {
        std::memcpy(out.data(), it->data.data() + (offset - it->offset),
                    out.size());
        ++metrics_.counter("cxl.sb_forwards");
        complete_after(config_.hit_ns, std::move(done), Status::Ok());
        return;
      }
      fence([this, line, offset, out, done = std::move(done),
             trace](const Status&) mutable {
        perform_load(line, offset, out, std::move(done), trace);
      });
      return;
    }
  }
  perform_load(line, offset, out, std::move(done), trace);
}

void CxlAgent::perform_load(LineId line, std::uint32_t offset,
                            std::span<std::byte> out, DoneCallback done,
                            net::TraceId trace) {
  if (line >= dir_.line_count()) {
    complete_after(0, std::move(done),
                   InvalidArgumentError("line out of range"));
    return;
  }
  const CacheLine* cl = find(line);
  if (hit_ok(cl, LineState::kShared)) {
    ++metrics_.counter("cxl.load_hits");
    lru_.touch(line);
    std::memcpy(out.data(), cl->bytes.data() + offset, out.size());
    metrics_.histogram("cxl.load_ns")
        .record(static_cast<std::uint64_t>(config_.hit_ns));
    complete_after(config_.hit_ns, std::move(done), Status::Ok());
    return;
  }
  ++metrics_.counter("cxl.load_misses");
  done = wrap_span(trace, "cxl.fill", std::move(done));
  const SimTime start = sim().now();
  auto alive = alive_;
  CxlDirectory* dir = &dir_;
  // dm-lock: order(cxl.line)
  dir_.lock(line, [this, alive, dir, line, offset, out,
                   done = std::move(done), trace, start]() mutable {
    if (!*alive) {
      dir->unlock(line);
      return;
    }
    // Re-check: an earlier transaction of ours may have filled the line
    // while we queued on the lock.
    const CacheLine* cl2 = find(line);
    if (hit_ok(cl2, LineState::kShared)) {
      ++metrics_.counter("cxl.load_hits");
      lru_.touch(line);
      std::memcpy(out.data(), cl2->bytes.data() + offset, out.size());
      dir->unlock(line);
      complete_after(config_.hit_ns, std::move(done), Status::Ok());
      return;
    }
    dir->settle_holders(
        line, node(), /*keep_shared=*/true, trace,
        [this, alive, dir, line, offset, out, done = std::move(done), trace,
         start]() mutable {
          if (!*alive) {
            dir->unlock(line);
            return;
          }
          auto buf = std::make_shared<std::array<std::byte, kLineBytes>>();
          Status posted = dir->fabric_.cxl_read(
              node(), dir->home(), dir->rkey_, line * kLineBytes,
              std::span<std::byte>(buf->data(), buf->size()),
              [this, alive, dir, line, offset, out, done, buf,
               start](const net::Completion& c) mutable {
                if (!*alive) {
                  dir->unlock(line);
                  return;
                }
                if (!c.status.ok()) {
                  dir->unlock(line);
                  done(c.status);
                  return;
                }
                install(line, LineState::kShared, buf->data());
                auto& m = dir->meta(line);
                m.sharers.insert(node());
                if (m.owner == node()) m.owner = net::kInvalidNode;
                ++metrics_.counter("cxl.fills");
                std::memcpy(out.data(), buf->data() + offset, out.size());
                metrics_.histogram("cxl.load_ns")
                    .record(static_cast<std::uint64_t>(sim().now() - start));
                dir->unlock(line);
                done(Status::Ok());
              },
              trace);
          if (!posted.ok()) {
            dir->unlock(line);
            done(posted);
          }
        });
  });
}

void CxlAgent::store(LineId line, std::uint32_t offset,
                     std::span<const std::byte> data, DoneCallback done,
                     net::TraceId trace) {
  assert(offset + data.size() <= kLineBytes);
  ++metrics_.counter("cxl.stores");
  if (config_.store_buffer) {
    sb_.push_back(SbEntry{line, offset,
                          std::vector<std::byte>(data.begin(), data.end())});
    metrics_.histogram("cxl.sb_depth").record(sb_.size());
    auto alive = alive_;
    sim().schedule_after(config_.drain_ns, [this, alive]() {
      if (*alive) pump_store_buffer();
    });
    // TSO: the store retires locally as soon as it is buffered.
    complete_after(config_.hit_ns, std::move(done), Status::Ok());
    return;
  }
  perform_store(line, offset,
                std::vector<std::byte>(data.begin(), data.end()),
                std::move(done), trace);
}

void CxlAgent::perform_store(LineId line, std::uint32_t offset,
                             std::vector<std::byte> data, DoneCallback done,
                             net::TraceId trace) {
  if (line >= dir_.line_count()) {
    complete_after(0, std::move(done),
                   InvalidArgumentError("line out of range"));
    return;
  }
  const SimTime start = sim().now();
  CacheLine* cl = find(line);
  if (hit_ok(cl, LineState::kExclusive)) {
    ++metrics_.counter("cxl.store_hits");
    lru_.touch(line);
    std::memcpy(cl->bytes.data() + offset, data.data(), data.size());
    cl->dirty = true;
    metrics_.histogram("cxl.store_ns")
        .record(static_cast<std::uint64_t>(config_.hit_ns));
    complete_after(config_.hit_ns, std::move(done), Status::Ok());
    return;
  }
  ++metrics_.counter(cl != nullptr && cl->state == LineState::kShared
                         ? "cxl.upgrades"
                         : "cxl.store_misses");
  done = wrap_span(trace, "cxl.upgrade", std::move(done));
  auto alive = alive_;
  CxlDirectory* dir = &dir_;
  // dm-lock: order(cxl.line)
  dir_.lock(line, [this, alive, dir, line, offset, data = std::move(data),
                   done = std::move(done), trace, start]() mutable {
    if (!*alive) {
      dir->unlock(line);
      return;
    }
    CacheLine* cl2 = find(line);
    if (hit_ok(cl2, LineState::kExclusive)) {
      ++metrics_.counter("cxl.store_hits");
      lru_.touch(line);
      std::memcpy(cl2->bytes.data() + offset, data.data(), data.size());
      cl2->dirty = true;
      dir->unlock(line);
      complete_after(config_.hit_ns, std::move(done), Status::Ok());
      return;
    }
    dir->settle_holders(
        line, node(), /*keep_shared=*/false, trace,
        [this, alive, dir, line, offset, data = std::move(data),
         done = std::move(done), trace, start]() mutable {
          if (!*alive) {
            dir->unlock(line);
            return;
          }
          auto grant = [this, dir, line, offset, start](
                           std::span<const std::byte> value) {
            CacheLine& granted = cache_[line];
            granted.state = LineState::kExclusive;
            granted.settling = false;
            std::memcpy(granted.bytes.data() + offset, value.data(),
                        value.size());
            granted.dirty = true;
            lru_.touch(line);
            auto& m = dir->meta(line);
            m.owner = node();
            m.sharers.erase(node());
            metrics_.histogram("cxl.store_ns")
                .record(static_cast<std::uint64_t>(sim().now() - start));
          };
          CacheLine* cl3 = find(line);
          if (hit_ok(cl3, LineState::kShared)) {
            // Upgrade in place: we hold the bytes; a zero-length control
            // transaction records the ownership change at the home.
            Status posted = dir->fabric_.cxl_write(
                node(), dir->home(), dir->rkey_, line * kLineBytes, {},
                [this, alive, dir, line, data = std::move(data), done,
                 grant](const net::Completion& c) mutable {
                  if (!*alive) {
                    dir->unlock(line);
                    return;
                  }
                  if (!c.status.ok()) {
                    dir->unlock(line);
                    done(c.status);
                    return;
                  }
                  grant(std::span<const std::byte>(data));
                  dir->unlock(line);
                  trim_cache();
                  done(Status::Ok());
                },
                trace);
            if (!posted.ok()) {
              dir->unlock(line);
              done(posted);
            }
            return;
          }
          // Miss: fill the line from home, then apply the store on top.
          auto buf = std::make_shared<std::array<std::byte, kLineBytes>>();
          Status posted = dir->fabric_.cxl_read(
              node(), dir->home(), dir->rkey_, line * kLineBytes,
              std::span<std::byte>(buf->data(), buf->size()),
              [this, alive, dir, line, data = std::move(data), done, buf,
               grant](const net::Completion& c) mutable {
                if (!*alive) {
                  dir->unlock(line);
                  return;
                }
                if (!c.status.ok()) {
                  dir->unlock(line);
                  done(c.status);
                  return;
                }
                install(line, LineState::kExclusive, buf->data());
                grant(std::span<const std::byte>(data));
                ++metrics_.counter("cxl.fills");
                dir->unlock(line);
                done(Status::Ok());
              },
              trace);
          if (!posted.ok()) {
            dir->unlock(line);
            done(posted);
          }
        });
  });
}

void CxlAgent::fence(DoneCallback done) {
  ++metrics_.counter("cxl.fences");
  if (sb_.empty() && !drain_inflight_) {
    complete_after(0, std::move(done), Status::Ok());
    return;
  }
  fence_waiters_.push_back(std::move(done));
  pump_store_buffer();
}

void CxlAgent::pump_store_buffer() {
  if (drain_inflight_) return;
  if (sb_.empty()) {
    finish_drain_if_empty();
    return;
  }
  drain_inflight_ = true;
  const SbEntry& entry = sb_.front();
  auto alive = alive_;
  perform_store(entry.line, entry.offset, entry.data,
                [this, alive](const Status& s) {
                  if (!*alive) return;
                  drain_inflight_ = false;
                  sb_.pop_front();
                  ++metrics_.counter("cxl.sb_drains");
                  if (!s.ok()) ++metrics_.counter("cxl.sb_drain_errors");
                  if (sb_.empty())
                    finish_drain_if_empty();
                  else
                    pump_store_buffer();
                },
                net::kNoTrace);
}

void CxlAgent::finish_drain_if_empty() {
  if (!sb_.empty() || drain_inflight_) return;
  auto waiters = std::move(fence_waiters_);
  fence_waiters_.clear();
  for (auto& waiter : waiters) waiter(Status::Ok());
}

void CxlAgent::trim_cache() {
  if (trimming_ || cache_.size() <= config_.cache_lines) return;
  trimming_ = true;
  auto victim = lru_.evict_lru();
  if (!victim) {
    trimming_ = false;
    return;
  }
  auto alive = alive_;
  release_line(*victim, [this, alive]() {
    if (!*alive) return;
    trimming_ = false;
    trim_cache();
  });
}

void CxlAgent::release_line(LineId line, std::function<void()> then) {
  auto alive = alive_;
  CxlDirectory* dir = &dir_;
  // dm-lock: order(cxl.line)
  dir_.lock(line, [this, alive, dir, line, then = std::move(then)]() mutable {
    if (!*alive) {
      dir->unlock(line);
      then();
      return;
    }
    CacheLine* cl = find(line);
    if (cl == nullptr) {
      dir->unlock(line);
      then();
      return;
    }
    cl->settling = true;
    ++metrics_.counter("cxl.evictions");
    if (cl->state == LineState::kShared) {
      // Silent drop: no fabric traffic; the directory entry may go stale
      // and is repaired at the next snoop.
      cache_.erase(line);
      lru_.erase(line);
      dir->meta(line).sharers.erase(node());
      dir->unlock(line);
      then();
      return;
    }
    // Exclusive: write back if dirty; a clean release is a zero-length
    // control transaction recording the ownership change.
    const bool dirty = cl->dirty;
    if (dirty) ++metrics_.counter("cxl.evict_writebacks");
    std::span<const std::byte> payload =
        dirty ? std::span<const std::byte>(cl->bytes.data(), kLineBytes)
              : std::span<const std::byte>{};
    auto finish = [this, alive, dir, line, then = std::move(then)]() mutable {
      if (*alive) {
        cache_.erase(line);
        lru_.erase(line);
      }
      auto& m = dir->meta(line);
      if (m.owner == node()) m.owner = net::kInvalidNode;
      m.sharers.erase(node());
      dir->unlock(line);
      then();
    };
    Status posted = dir->fabric_.cxl_write(
        node(), dir->home(), dir->rkey_, line * kLineBytes, payload,
        [finish](const net::Completion&) mutable { finish(); },
        net::kNoTrace);
    if (!posted.ok()) finish();
  });
}

// ---- region ops ------------------------------------------------------------

void CxlAgent::unlock_range_of(CxlDirectory* dir, LineId first,
                               std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) dir->unlock(first + i);
}

void CxlAgent::lock_range(LineId first, std::size_t count,
                          std::function<void()> fn) {
  struct Step {
    static void run(CxlAgent* self, std::shared_ptr<bool> alive,
                    CxlDirectory* dir, LineId first, std::size_t count,
                    std::size_t idx,
                    std::shared_ptr<std::function<void()>> fn) {
      if (idx == count) {
        (*fn)();
        return;
      }
      // Ascending acquisition order: cannot cycle with any other range op
      // (also ascending) or single-line transaction (holds one lock).
      // dm-lock: order(cxl.line, ascending)
      dir->lock(first + idx, [self, alive, dir, first, count, idx, fn]() {
        if (!*alive) {
          // The agent tore down while we queued; we now hold
          // [first, first + idx] and must hand them all back.
          unlock_range_of(dir, first, idx + 1);
          return;
        }
        run(self, alive, dir, first, count, idx + 1, fn);
      });
    }
  };
  Step::run(this, alive_, &dir_, first, count, 0,
            std::make_shared<std::function<void()>>(std::move(fn)));
}

void CxlAgent::settle_range(LineId first, std::size_t count, bool keep_shared,
                            net::TraceId trace, std::function<void()> then) {
  struct Step {
    static void run(std::shared_ptr<bool> alive, CxlDirectory* dir,
                    LineId first, std::size_t count, std::size_t idx,
                    bool keep_shared, net::TraceId trace,
                    std::shared_ptr<std::function<void()>> then) {
      // A teardown mid-chain short-circuits straight to `then`, whose own
      // alive guard releases the range locks.
      if (idx == count || !*alive) {
        (*then)();
        return;
      }
      // kInvalidNode requester: settle every holder, own copies included —
      // a region write must invalidate (and a region read must flush) the
      // initiating agent's cached lines too.
      dir->settle_holders(
          first + idx, net::kInvalidNode, keep_shared, trace,
          [alive, dir, first, count, idx, keep_shared, trace, then]() {
            run(alive, dir, first, count, idx + 1, keep_shared, trace, then);
          });
    }
  };
  Step::run(alive_, &dir_, first, count, 0, keep_shared, trace,
            std::make_shared<std::function<void()>>(std::move(then)));
}

void CxlAgent::write_region(LineId first, std::span<const std::byte> data,
                            DoneCallback done, net::TraceId trace) {
  assert(data.size() % kLineBytes == 0);
  const std::size_t count = data.size() / kLineBytes;
  if (count == 0 || first + count > dir_.line_count()) {
    complete_after(0, std::move(done),
                   InvalidArgumentError("region out of range"));
    return;
  }
  ++metrics_.counter("cxl.region_writes");
  done = wrap_span(trace, "cxl.region_write", std::move(done));
  auto payload =
      std::make_shared<std::vector<std::byte>>(data.begin(), data.end());
  auto alive = alive_;
  CxlDirectory* dir = &dir_;
  lock_range(first, count, [this, alive, dir, first, count, payload,
                            done = std::move(done), trace]() mutable {
    if (!*alive) {
      unlock_range_of(dir, first, count);
      return;
    }
    settle_range(first, count, /*keep_shared=*/false, trace,
                 [this, alive, dir, first, count, payload,
                  done = std::move(done), trace]() mutable {
                   if (!*alive) {
                     unlock_range_of(dir, first, count);
                     return;
                   }
                   Status posted = dir->fabric_.cxl_write(
                       node(), dir->home(), dir->rkey_, first * kLineBytes,
                       std::span<const std::byte>(*payload),
                       [alive, dir, first, count, payload,
                        done](const net::Completion& c) {
                         unlock_range_of(dir, first, count);
                         if (*alive && done) done(c.status);
                       },
                       trace);
                   if (!posted.ok()) {
                     unlock_range_of(dir, first, count);
                     done(posted);
                   }
                 });
  });
}

void CxlAgent::read_region(LineId first, std::span<std::byte> out,
                           DoneCallback done, net::TraceId trace) {
  assert(out.size() % kLineBytes == 0);
  const std::size_t count = out.size() / kLineBytes;
  if (count == 0 || first + count > dir_.line_count()) {
    complete_after(0, std::move(done),
                   InvalidArgumentError("region out of range"));
    return;
  }
  ++metrics_.counter("cxl.region_reads");
  done = wrap_span(trace, "cxl.region_read", std::move(done));
  auto alive = alive_;
  CxlDirectory* dir = &dir_;
  lock_range(first, count, [this, alive, dir, first, count, out,
                            done = std::move(done), trace]() mutable {
    if (!*alive) {
      unlock_range_of(dir, first, count);
      return;
    }
    // Flush dirty owners (holders stay Shared), then pull the range.
    settle_range(first, count, /*keep_shared=*/true, trace,
                 [this, alive, dir, first, count, out,
                  done = std::move(done), trace]() mutable {
                   if (!*alive) {
                     unlock_range_of(dir, first, count);
                     return;
                   }
                   Status posted = dir->fabric_.cxl_read(
                       node(), dir->home(), dir->rkey_, first * kLineBytes,
                       out,
                       [alive, dir, first, count,
                        done](const net::Completion& c) {
                         unlock_range_of(dir, first, count);
                         if (*alive && done) done(c.status);
                       },
                       trace);
                   if (!posted.ok()) {
                     unlock_range_of(dir, first, count);
                     done(posted);
                   }
                 });
  });
}

// ---- synchronous wrappers --------------------------------------------------

namespace {
struct SyncWait {
  bool flag = false;
  Status result;
};
}  // namespace

Status CxlAgent::load_sync(LineId line, std::uint32_t offset,
                           std::span<std::byte> out, net::TraceId trace) {
  SyncWait wait;
  load(line, offset, out,
       [&wait](const Status& s) {
         wait.result = s;
         wait.flag = true;
       },
       trace);
  if (!sim().run_until_flag(wait.flag))
    return TimeoutError("cxl load lost completion");
  return wait.result;
}

Status CxlAgent::store_sync(LineId line, std::uint32_t offset,
                            std::span<const std::byte> data,
                            net::TraceId trace) {
  SyncWait wait;
  store(line, offset, data,
        [&wait](const Status& s) {
          wait.result = s;
          wait.flag = true;
        },
        trace);
  if (!sim().run_until_flag(wait.flag))
    return TimeoutError("cxl store lost completion");
  return wait.result;
}

Status CxlAgent::fence_sync() {
  SyncWait wait;
  fence([&wait](const Status& s) {
    wait.result = s;
    wait.flag = true;
  });
  if (!sim().run_until_flag(wait.flag))
    return TimeoutError("cxl fence lost completion");
  return wait.result;
}

Status CxlAgent::write_region_sync(LineId first,
                                   std::span<const std::byte> data,
                                   net::TraceId trace) {
  SyncWait wait;
  write_region(first, data,
               [&wait](const Status& s) {
                 wait.result = s;
                 wait.flag = true;
               },
               trace);
  if (!sim().run_until_flag(wait.flag))
    return TimeoutError("cxl region write lost completion");
  return wait.result;
}

Status CxlAgent::read_region_sync(LineId first, std::span<std::byte> out,
                                  net::TraceId trace) {
  SyncWait wait;
  read_region(first, out,
              [&wait](const Status& s) {
                wait.result = s;
                wait.flag = true;
              },
              trace);
  if (!sim().run_until_flag(wait.flag))
    return TimeoutError("cxl region read lost completion");
  return wait.result;
}

}  // namespace dm::cxl
