// Page-granular pool over the CXL line tier — the middle rung of the
// DRAM -> CXL -> RDMA -> disk hierarchy (DESIGN.md §14).
//
// The tier owns a slab of consecutive lines in a CxlDirectory region and
// maps demoted 4 KiB pages onto fixed slots. A demotion pushes the whole
// page through the coherence protocol as one bulk region write (holders
// invalidated line by line, one fabric data transaction); a promotion
// pulls it back and frees the slot. While a page lives here, sub-page
// accesses run as coherent cache-line loads/stores through the owning
// agent — a hot line costs a local hit or one ns-scale line fill instead
// of a microsecond-scale page fault, which is the entire point of the
// tier. Per-page touch counts feed the swap layer's promotion policy
// (promote after N sub-page hits); LRU order feeds demotion-to-backend
// when the pool is full.
//
// Pages stored here are authoritative: the swap layer never keeps a page
// simultaneously in the CXL pool and in the RDMA/disk backend
// (tests/model_test.cc invariant T1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>

#include "common/lru.h"
#include "common/metrics.h"
#include "common/status.h"
#include "cxl/coherence.h"

namespace dm::cxl {

class CxlPageTier {
 public:
  struct Config {
    std::size_t pool_pages = 64;
    std::size_t page_bytes = 4096;
    // First directory line of the pool's slab (slots are consecutive).
    LineId base_line = 0;
  };

  CxlPageTier(CxlAgent& agent, Config config);

  CxlPageTier(const CxlPageTier&) = delete;
  CxlPageTier& operator=(const CxlPageTier&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return pages_.size(); }
  bool full() const noexcept { return free_slots_.empty(); }
  bool contains(std::uint64_t page) const { return pages_.count(page) > 0; }
  std::size_t lines_per_page() const noexcept { return lines_per_page_; }
  CxlAgent& agent() noexcept { return agent_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }

  // Sub-page hit count since the page entered the pool (0 if absent).
  std::uint64_t touches(std::uint64_t page) const;
  // Least-recently-touched page in the pool (demotion victim).
  std::optional<std::uint64_t> coldest() const { return lru_.peek_lru(); }

  // Moves a page into the pool (one bulk region write through the
  // protocol). Fails with kResourceExhausted when full, kAlreadyExists if
  // the page is already pooled.
  [[nodiscard]] Status demote(std::uint64_t page,
                              std::span<const std::byte> bytes,
                              net::TraceId trace = net::kNoTrace);

  // Pulls a page out of the pool into `out` and frees its slot (dirty
  // holder lines are flushed first, so `out` sees the latest write).
  [[nodiscard]] Status promote(std::uint64_t page, std::span<std::byte> out,
                               net::TraceId trace = net::kNoTrace);

  // Coherent sub-page access to one line of a pooled page (read-modify-
  // write when `write`); bumps the page's touch count and LRU recency.
  [[nodiscard]] Status touch_line(std::uint64_t page, std::size_t line_index,
                                  bool write,
                                  net::TraceId trace = net::kNoTrace);

 private:
  LineId first_line_of(std::size_t slot) const noexcept {
    return config_.base_line + slot * lines_per_page_;
  }

  struct Slot {
    std::size_t index = 0;
    std::uint64_t touches = 0;
  };

  CxlAgent& agent_;
  Config config_;
  std::size_t lines_per_page_ = 0;
  std::size_t capacity_ = 0;
  std::map<std::uint64_t, Slot> pages_;
  std::set<std::size_t> free_slots_;  // lowest-first: deterministic reuse
  LruTracker<std::uint64_t> lru_;
  MetricsRegistry metrics_;
};

}  // namespace dm::cxl
