// Software-coherent CXL-class memory tier (ROADMAP: the successor tier
// between local DRAM and RDMA paging; see the cross-layer survey in
// PAPERS.md and DESIGN.md §14).
//
// One CxlDirectory owns a line-granular backing region registered with the
// fabric on its home node and tracks, per 64-byte line, which agents hold
// copies and in which state. CxlAgents are per-node load/store ports with a
// small local line cache; misses run an MSI-style protocol:
//
//   load miss  -> AcquireShared: the home downgrades an exclusive owner
//                 (write-back if dirty), then the requester pulls the line
//                 over the fabric's CXL port and caches it Shared.
//   store miss -> AcquireExclusive: the home back-invalidates every other
//                 holder (write-back from a dirty owner first), then grants
//                 the line Exclusive; the store applies in the local cache
//                 and the line goes dirty. Write-back happens on demotion
//                 (eviction, snoop, region read), not write-through.
//
// Every protocol hop is a real fabric transaction (Fabric::cxl_read /
// cxl_write): data hops carry line bytes into/out of the home's backing
// region; control hops (snoops, clean releases) are zero-length
// transactions against per-agent mailbox lines. All timing is virtual, so
// the same seed and call sequence yield bit-identical protocol traces.
//
// Memory model. With the store buffer off (default), an operation completes
// only once it is globally visible, so completed operations are
// sequentially consistent: the classic litmus shapes admit exactly their SC
// outcome sets (SB forbids r0=r1=0, LB forbids 1/1, MP forbids 1/0, IRIW
// forbids disagreeing readers — pinned by tests/cxl_test.cc). With
// Config::store_buffer on, stores retire into a per-agent FIFO buffer and
// drain asynchronously (TSO): loads forward from the buffer, SB
// additionally admits r0=r1=0, and LB/MP/IRIW sets are unchanged. fence()
// drains the buffer.
//
// Concurrency discipline: the directory serializes transactions per line
// with a FIFO lock queue. Single-line transactions hold at most one line
// lock; bulk region operations (the page tier's demote/promote path) lock
// their line range in ascending order — no cycle is possible, so the
// protocol cannot deadlock.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string_view>
#include <vector>

#include "common/lru.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "net/fabric.h"
#include "net/rdma.h"
#include "sim/simulator.h"
#include "sim/span_sink.h"

namespace dm::cxl {

// CXL.mem transaction granularity: one cache line.
inline constexpr std::size_t kLineBytes = 64;

using LineId = std::uint64_t;

enum class LineState : std::uint8_t {
  kInvalid = 0,
  kShared = 1,     // clean, possibly replicated across agents
  kExclusive = 2,  // sole copy, may be dirty
};

std::string_view to_string(LineState state) noexcept;

class CxlAgent;

// Home-side state: the backing bytes plus per-line holder bookkeeping.
class CxlDirectory {
 public:
  struct Config {
    net::NodeId home = 0;
    std::size_t line_count = 1024;
  };

  CxlDirectory(net::Fabric& fabric, Config config);
  ~CxlDirectory();

  CxlDirectory(const CxlDirectory&) = delete;
  CxlDirectory& operator=(const CxlDirectory&) = delete;

  net::NodeId home() const noexcept { return config_.home; }
  std::size_t line_count() const noexcept { return config_.line_count; }
  net::Fabric& fabric() noexcept { return fabric_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }
  void set_span_sink(sim::SpanSink* spans) noexcept { spans_ = spans; }
  sim::SpanSink* span_sink() const noexcept { return spans_; }

  // Directory-side views (tests/diagnostics). owner_of returns kInvalidNode
  // when no agent holds the line Exclusive. Clean Shared drops update the
  // holder bookkeeping without a fabric transaction (clean data needs no
  // write-back and no permission change at the home).
  net::NodeId owner_of(LineId line) const;
  std::size_t sharer_count(LineId line) const;
  bool line_busy(LineId line) const;
  // The home copy of a line (authoritative once write-backs land).
  std::span<const std::byte> backing_line(LineId line) const;

 private:
  friend class CxlAgent;

  struct LineMeta {
    net::NodeId owner = net::kInvalidNode;
    std::set<net::NodeId> sharers;  // excludes owner
    bool busy = false;              // a transaction holds the line lock
    std::deque<std::function<void()>> waiters;  // FIFO lock queue
  };

  // Per-line FIFO lock: fn runs once the line is exclusively ours.
  void lock(LineId line, std::function<void()> fn);
  void unlock(LineId line);
  LineMeta& meta(LineId line);

  void register_agent(CxlAgent* agent);
  void unregister_agent(CxlAgent* agent);
  CxlAgent* agent_on(net::NodeId node);

  // Snoops every holder other than `requester` (pass kInvalidNode to visit
  // all holders): one control hop home->holder per snoop, a write-back data
  // hop first when the holder is dirty. keep_shared demotes holders to
  // Shared (load path); otherwise they are invalidated (store path). Runs
  // `then` once every holder has settled. Caller must hold the line lock.
  void settle_holders(LineId line, net::NodeId requester, bool keep_shared,
                      net::TraceId trace, std::function<void()> then);

  net::Fabric& fabric_;
  Config config_;
  std::vector<std::byte> backing_;
  net::RKey rkey_ = net::kInvalidRKey;
  std::map<LineId, LineMeta> lines_;
  std::map<net::NodeId, CxlAgent*> agents_;
  MetricsRegistry metrics_;
  sim::SpanSink* spans_ = nullptr;
};

// Per-node load/store port with a small software-managed line cache.
class CxlAgent {
 public:
  struct Config {
    net::NodeId node = 0;
    // Soft capacity: installs never block; over-capacity lines are trimmed
    // by an asynchronous LRU release chain (transient overshoot is bounded
    // by the lines a burst can install before the chain catches up).
    std::size_t cache_lines = 64;
    // Local hit / store-buffer retire latency.
    SimTime hit_ns = 40;
    // TSO mode: stores retire into a FIFO buffer and drain asynchronously.
    bool store_buffer = false;
    // Delay before a buffered store starts draining to the cache/protocol.
    SimTime drain_ns = 2 * kMicro;
  };

  using DoneCallback = std::function<void(const Status&)>;

  CxlAgent(CxlDirectory& directory, Config config);
  ~CxlAgent();

  CxlAgent(const CxlAgent&) = delete;
  CxlAgent& operator=(const CxlAgent&) = delete;

  net::NodeId node() const noexcept { return config_.node; }
  const Config& config() const noexcept { return config_; }
  CxlDirectory& directory() noexcept { return dir_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }

  // Async load/store of a sub-line range [offset, offset + size) within
  // `line`. size must fit in the line. Completion order defines the memory
  // model (see file header).
  void load(LineId line, std::uint32_t offset, std::span<std::byte> out,
            DoneCallback done, net::TraceId trace = net::kNoTrace);
  void store(LineId line, std::uint32_t offset,
             std::span<const std::byte> data, DoneCallback done,
             net::TraceId trace = net::kNoTrace);
  // Completes once every buffered store has drained (SC mode: immediately).
  void fence(DoneCallback done);

  // Bulk ops for the page tier: write/read `data.size() / kLineBytes`
  // consecutive lines starting at `first`, through the protocol (every
  // holder settled per line, own copies included) but with one fabric data
  // transaction for the whole range and no cache fill — a page demotion
  // must not evict the hot lines it rides past.
  void write_region(LineId first, std::span<const std::byte> data,
                    DoneCallback done, net::TraceId trace = net::kNoTrace);
  void read_region(LineId first, std::span<std::byte> out, DoneCallback done,
                   net::TraceId trace = net::kNoTrace);

  // Synchronous wrappers: drive the simulator until the completion fires.
  [[nodiscard]] Status load_sync(LineId line, std::uint32_t offset,
                                 std::span<std::byte> out,
                                 net::TraceId trace = net::kNoTrace);
  [[nodiscard]] Status store_sync(LineId line, std::uint32_t offset,
                                  std::span<const std::byte> data,
                                  net::TraceId trace = net::kNoTrace);
  [[nodiscard]] Status fence_sync();
  [[nodiscard]] Status write_region_sync(LineId first,
                                         std::span<const std::byte> data,
                                         net::TraceId trace = net::kNoTrace);
  [[nodiscard]] Status read_region_sync(LineId first, std::span<std::byte> out,
                                        net::TraceId trace = net::kNoTrace);

  // Cache-side views (tests/diagnostics).
  LineState state_of(LineId line) const;
  bool line_dirty(LineId line) const;
  std::size_t cached_lines() const noexcept { return cache_.size(); }
  std::size_t store_buffer_depth() const noexcept { return sb_.size(); }

 private:
  friend class CxlDirectory;

  struct CacheLine {
    LineState state = LineState::kInvalid;
    bool dirty = false;
    // Set while a snoop or eviction is settling the line: fast-path hits
    // must miss and queue behind the in-flight transaction, or a hit could
    // dirty the line after its write-back snapshot and lose the write.
    bool settling = false;
    std::array<std::byte, kLineBytes> bytes{};
  };

  struct SbEntry {
    LineId line = 0;
    std::uint32_t offset = 0;
    std::vector<std::byte> data;
  };

  sim::Simulator& sim() noexcept { return dir_.fabric_.simulator(); }
  CacheLine* find(LineId line);
  const CacheLine* find(LineId line) const;
  bool hit_ok(const CacheLine* cl, LineState need) const;

  void perform_load(LineId line, std::uint32_t offset,
                    std::span<std::byte> out, DoneCallback done,
                    net::TraceId trace);
  void perform_store(LineId line, std::uint32_t offset,
                     std::vector<std::byte> data, DoneCallback done,
                     net::TraceId trace);
  void install(LineId line, LineState state, const std::byte* bytes);
  // Asynchronous LRU trim back to capacity (see Config::cache_lines).
  void trim_cache();
  // Releases one line (write-back if dirty, control hop for clean
  // Exclusive, silent drop for Shared), then runs `then`.
  void release_line(LineId line, std::function<void()> then);
  void complete_after(SimTime delay, DoneCallback done, Status status);
  DoneCallback wrap_span(net::TraceId trace, const char* name,
                         DoneCallback done);

  // Store-buffer drain pump (one in-flight drain at a time).
  void pump_store_buffer();
  void finish_drain_if_empty();

  // Region-op helpers: ascending lock chain over [first, first + count).
  void lock_range(LineId first, std::size_t count, std::function<void()> fn);
  // Static so in-flight completions can release locks after agent teardown.
  static void unlock_range_of(CxlDirectory* dir, LineId first,
                              std::size_t count);
  void settle_range(LineId first, std::size_t count, bool keep_shared,
                    net::TraceId trace, std::function<void()> then);

  CxlDirectory& dir_;
  Config config_;
  std::map<LineId, CacheLine> cache_;
  LruTracker<LineId> lru_;
  std::deque<SbEntry> sb_;
  bool drain_inflight_ = false;
  std::vector<DoneCallback> fence_waiters_;
  bool trimming_ = false;
  // Snoop mailbox: zero-length control writes land here (the payload is
  // the transaction itself; state changes apply at its completion).
  std::array<std::byte, kLineBytes> mailbox_{};
  net::RKey mailbox_rkey_ = net::kInvalidRKey;
  MetricsRegistry metrics_;
  // Guards scheduled callbacks against agent teardown.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace dm::cxl
