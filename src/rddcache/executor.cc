#include "rddcache/executor.h"

#include <cstring>

#include "common/status.h"
#include "common/units.h"
#include "core/ldmc.h"

namespace dm::rdd {
namespace {

std::uint64_t pack(RddId rdd, std::uint64_t partition) {
  return (static_cast<std::uint64_t>(rdd) << 40) ^ partition;
}

}  // namespace

Executor::Executor(core::Ldmc& client, Config config)
    : client_(client), config_(config),
      disk_cursor_(client.service().node().disk().capacity() / 2) {}

void Executor::charge(SimTime cost) {
  auto& sim = client_.service().node().simulator();
  sim.run_until(sim.now() + cost);
}

std::vector<std::byte> Executor::serialize(
    const std::vector<Record>& records) {
  std::vector<std::byte> out(records.size() * sizeof(Record));
  std::memcpy(out.data(), records.data(), out.size());
  return out;
}

std::vector<Record> Executor::deserialize(std::span<const std::byte> bytes) {
  std::vector<Record> out(bytes.size() / sizeof(Record));
  std::memcpy(out.data(), bytes.data(), out.size() * sizeof(Record));
  return out;
}

mem::EntryId Executor::chunk_entry(const CacheKey& key,
                                   std::uint64_t chunk) const {
  return (static_cast<mem::EntryId>(key.rdd) << 40) ^
         ((key.partition & 0xffffffffULL) << 8) ^ chunk;
}

StatusOr<std::vector<Record>> Executor::get_partition(const RddPtr& rdd,
                                                      std::size_t p) {
  const CacheKey key{rdd->id(), p};

  if (rdd->is_cached()) {
    if (auto cached = cache_load(key)) {
      ++hits_;
      return *std::move(cached);
    }
    // Off-heap copy (DAHI entries or vanilla spill)?
    auto off = offheap_.find(key);
    if (off != offheap_.end()) {
      ++offheap_fetches_;
      std::vector<std::byte> bytes(off->second.bytes);
      if (off->second.on_disk) {
        DM_RETURN_IF_ERROR(client_.service().node().disk().read_sync(
            off->second.disk_offset, bytes));
      } else {
        std::uint64_t cursor = 0;
        for (std::uint64_t c = 0; c < off->second.chunks; ++c) {
          const mem::EntryId entry = chunk_entry(key, c);
          auto size = client_.stored_size(entry);
          if (!size.ok()) return size.status();
          DM_RETURN_IF_ERROR(client_.get_sync(
              entry, std::span(bytes).subspan(cursor, *size)));
          cursor += *size;
        }
      }
      return deserialize(bytes);
    }
    ++misses_;
  }

  // Compute from lineage.
  std::uint64_t compute_ops = 0;
  std::vector<Record> records = rdd->compute(p, &compute_ops);
  charge(static_cast<SimTime>(compute_ops) * config_.cpu_ns_per_record);
  if (rdd->is_cached()) {
    if (computed_before_.count(pack(key.rdd, key.partition)) > 0)
      ++recomputes_;
    computed_before_.insert(pack(key.rdd, key.partition));
    cache_store(key, records);
  }
  return records;
}

std::optional<std::vector<Record>> Executor::cache_load(const CacheKey& key) {
  auto it = heap_.find(key);
  if (it == heap_.end()) return std::nullopt;
  lru_.touch(pack(key.rdd, key.partition));
  return it->second;
}

void Executor::cache_store(const CacheKey& key,
                           const std::vector<Record>& records) {
  const std::uint64_t bytes = records.size() * sizeof(Record);
  if (heap_used_ + bytes > config_.cache_bytes) {
    // Spark MEMORY_ONLY semantics: a block that does not fit is not
    // admitted (blocks of the RDD being materialized are never evicted for
    // it). Vanilla drops it — "partial caching" — while the spill/DAHI
    // policies store it off-heap instead.
    overflow_store(key, records);
    return;
  }
  heap_.emplace(key, records);
  heap_used_ += bytes;
  lru_.touch(pack(key.rdd, key.partition));
}

void Executor::overflow_store(const CacheKey& key,
                              const std::vector<Record>& records) {
  switch (config_.overflow) {
    case OverflowPolicy::kRecompute:
      return;  // dropped; lineage recomputes on next use
    case OverflowPolicy::kSpillDisk: {
      std::vector<std::byte> bytes = serialize(records);
      auto& disk = client_.service().node().disk();
      if (disk_cursor_ + bytes.size() > disk.capacity()) return;  // spill full
      if (!disk.write_sync(disk_cursor_, bytes).ok()) return;
      offheap_[key] = OffHeapRef{0, bytes.size(), true, disk_cursor_};
      disk_cursor_ += bytes.size();
      return;
    }
    case OverflowPolicy::kDahi: {
      std::vector<std::byte> bytes = serialize(records);
      const std::uint64_t chunk_bytes = config_.dahi_chunk_bytes;
      std::uint64_t chunks = 0;
      for (std::uint64_t cursor = 0; cursor < bytes.size();
           cursor += chunk_bytes, ++chunks) {
        const std::uint64_t len =
            std::min<std::uint64_t>(chunk_bytes, bytes.size() - cursor);
        Status stored = client_.put_sync(
            chunk_entry(key, chunks),
            std::span<const std::byte>(bytes).subspan(cursor, len));
        if (!stored.ok()) {
          // Roll back partial chunks; the partition is simply not cached.
          for (std::uint64_t c = 0; c < chunks; ++c)
            (void)client_.remove_sync(chunk_entry(key, c));
          return;
        }
      }
      offheap_[key] = OffHeapRef{chunks, bytes.size(), false, 0};
      return;
    }
  }
}

void Executor::drop_entry(const CacheKey& key) {
  auto it = heap_.find(key);
  if (it != heap_.end()) {
    heap_used_ -= it->second.size() * sizeof(Record);
    heap_.erase(it);
    lru_.erase(pack(key.rdd, key.partition));
  }
  auto off = offheap_.find(key);
  if (off != offheap_.end()) {
    if (!off->second.on_disk) {
      for (std::uint64_t c = 0; c < off->second.chunks; ++c)
        (void)client_.remove_sync(chunk_entry(key, c));
    }
    offheap_.erase(off);
  }
}

}  // namespace dm::rdd
