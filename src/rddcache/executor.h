// Mini-Spark executor with a bounded partition cache and pluggable
// overflow handling (paper §V.B).
//
// An Executor is a JVM-executor-class virtual server: it computes RDD
// partitions (charging CPU time per record of lineage) and caches the
// partitions of .cache()'d RDDs in its heap up to `cache_bytes`. When a
// partition does not fit, the overflow policy decides:
//
//   kRecompute — vanilla Spark MEMORY_ONLY: the partition is dropped and
//                recomputed from lineage on the next use;
//   kSpillDisk — vanilla Spark MEMORY_AND_DISK: serialize to the local disk;
//   kDahi      — DAHI: serialize off-heap into disaggregated memory through
//                the executor's LDMC (node-level shared pool first, then
//                remote memory), in window-batched chunks as DAHI does on
//                Accelio (default 64 KiB = window of eight 8 KiB messages).
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/lru.h"
#include "common/status.h"
#include "common/units.h"
#include "core/ldmc.h"
#include "rddcache/rdd.h"

namespace dm::rdd {

enum class OverflowPolicy { kRecompute, kSpillDisk, kDahi };

class Executor {
 public:
  struct Config {
    std::uint64_t cache_bytes = 8 * MiB;  // heap partition-cache budget
    OverflowPolicy overflow = OverflowPolicy::kRecompute;
    std::uint64_t dahi_chunk_bytes = 64 * KiB;
    SimTime cpu_ns_per_record = 60;   // lineage compute cost
    SimTime cpu_ns_per_record_scan = 12;  // action scan cost
  };

  Executor(core::Ldmc& client, Config config);

  core::Ldmc& client() noexcept { return client_; }

  // Returns partition `p` of `rdd`, from cache if possible; on miss,
  // computes from lineage (or fetches the off-heap/spilled copy) and, if the
  // RDD is marked cached, stores it. Charges all virtual-time costs.
  StatusOr<std::vector<Record>> get_partition(const RddPtr& rdd,
                                              std::size_t p);

  std::uint64_t cache_hits() const noexcept { return hits_; }
  std::uint64_t cache_misses() const noexcept { return misses_; }
  std::uint64_t recomputes() const noexcept { return recomputes_; }
  std::uint64_t offheap_fetches() const noexcept { return offheap_fetches_; }
  std::uint64_t heap_used() const noexcept { return heap_used_; }

 private:
  struct CacheKey {
    RddId rdd;
    std::uint64_t partition;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(k.rdd) << 40) ^ k.partition);
    }
  };
  struct OffHeapRef {
    std::uint64_t chunks = 0;
    std::uint64_t bytes = 0;
    bool on_disk = false;          // spilled (vanilla) vs DAHI entries
    std::uint64_t disk_offset = 0;
  };

  void charge(SimTime cost);
  static std::vector<std::byte> serialize(const std::vector<Record>& records);
  static std::vector<Record> deserialize(std::span<const std::byte> bytes);
  mem::EntryId chunk_entry(const CacheKey& key, std::uint64_t chunk) const;

  // Installs `records` in the heap cache, evicting LRU partitions; on
  // overflow defers to the policy. Never fails the caller: worst case the
  // partition simply is not cached.
  void cache_store(const CacheKey& key, const std::vector<Record>& records);
  void overflow_store(const CacheKey& key, const std::vector<Record>& records);
  std::optional<std::vector<Record>> cache_load(const CacheKey& key);
  void drop_entry(const CacheKey& key);

  core::Ldmc& client_;
  Config config_;
  std::unordered_map<CacheKey, std::vector<Record>, CacheKeyHash> heap_;
  std::unordered_map<CacheKey, OffHeapRef, CacheKeyHash> offheap_;
  LruTracker<std::uint64_t> lru_;  // packed CacheKey
  std::unordered_set<std::uint64_t> computed_before_;
  std::uint64_t heap_used_ = 0;
  std::uint64_t disk_cursor_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t recomputes_ = 0;
  std::uint64_t offheap_fetches_ = 0;
};

}  // namespace dm::rdd
