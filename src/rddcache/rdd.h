// Mini-Spark RDD abstraction (paper §V.B).
//
// An RDD is an immutable, partitioned dataset defined by lineage: either a
// source (deterministic generator standing in for stable storage) or a
// narrow transformation (map/filter) of a parent. Computing a partition
// walks the lineage — exactly the recompute path vanilla Spark takes when a
// partition misses the cache. Records are int64s; partitions serialize to
// 8 bytes/record, which is what travels into the executor heap cache, the
// spill disk, or (with DAHI) the disaggregated memory tiers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dm::rdd {

using Record = std::int64_t;
using RddId = std::uint32_t;

class Rdd;
using RddPtr = std::shared_ptr<const Rdd>;

class Rdd : public std::enable_shared_from_this<Rdd> {
 public:
  enum class Kind { kSource, kMap, kFilter };

  // Source RDD: `generator(partition, index)` yields record `index` of a
  // partition holding `records_per_partition` records.
  static RddPtr source(
      std::string name, std::size_t partitions,
      std::size_t records_per_partition,
      std::function<Record(std::size_t, std::size_t)> generator);

  // Materialized RDD: partitions hold concrete records (the output of a
  // shuffle stage — see MiniSpark::reduce_by_key).
  static RddPtr materialized(std::string name,
                             std::vector<std::vector<Record>> partitions);

  RddPtr map(std::string name, std::function<Record(Record)> fn) const;
  RddPtr filter(std::string name, std::function<bool(Record)> pred) const;

  // Marks this RDD for caching (Spark's .cache()). Mutable flag by design:
  // caching is an execution hint, not part of the dataset's identity.
  const Rdd* cache() const {
    cached_ = true;
    return this;
  }
  bool is_cached() const noexcept { return cached_; }

  RddId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  Kind kind() const noexcept { return kind_; }
  std::size_t partitions() const noexcept { return partitions_; }
  const RddPtr& parent() const noexcept { return parent_; }

  // Materializes partition `p` by walking the lineage (no caching here —
  // the executor layers caching on top). `compute_ops` returns the number
  // of per-record transformation steps applied, so the executor can charge
  // CPU time.
  std::vector<Record> compute(std::size_t p, std::uint64_t* compute_ops) const;

 private:
  Rdd() = default;

  static RddId next_id();

  RddId id_ = 0;
  std::string name_;
  Kind kind_ = Kind::kSource;
  std::size_t partitions_ = 0;
  std::size_t records_per_partition_ = 0;
  std::vector<std::vector<Record>> materialized_;
  RddPtr parent_;
  std::function<Record(std::size_t, std::size_t)> generator_;
  std::function<Record(Record)> map_fn_;
  std::function<bool(Record)> filter_fn_;
  mutable bool cached_ = false;
};

}  // namespace dm::rdd
