// Mini-Spark driver: executors over a DmSystem cluster, actions over RDDs.
//
// The driver plays the Spark master: it distributes an RDD's partitions
// round-robin over the executors and runs actions partition-by-partition.
// (Executors on distinct nodes would overlap in wall-clock time on a real
// cluster; the simulation serializes them, which scales every configuration
// by the same factor and therefore preserves the vanilla-vs-DAHI speedups
// that Fig 10 reports.)
//
// The two configurations of §V.B:
//   vanilla Spark — OverflowPolicy::kRecompute (or kSpillDisk),
//   DAHI          — OverflowPolicy::kDahi: overflow partitions are cached
//                   off-heap in disaggregated memory instead of dropped.
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "core/node_service.h"
#include "rddcache/executor.h"

namespace dm::rdd {

class MiniSpark {
 public:
  struct Config {
    std::size_t executors = 4;
    Executor::Config executor{};
    // Executor virtual-server memory allocation registered with its node.
    std::uint64_t executor_memory = 64 * MiB;
    core::LdmcOptions ldmc{};
    // Shuffle cost per record moved between stages (serialization +
    // network), charged at the stage boundary.
    SimTime shuffle_ns_per_record = 25;
  };

  // Places executors round-robin across the system's nodes.
  MiniSpark(core::DmSystem& system, Config config);

  std::size_t executor_count() const noexcept { return executors_.size(); }
  Executor& executor(std::size_t index) { return *executors_.at(index); }

  // Actions (each visits every partition once and charges scan time).
  StatusOr<Record> sum(const RddPtr& rdd);
  StatusOr<std::uint64_t> count(const RddPtr& rdd);

  // Wide transformation: groups records by key(record), reduces values per
  // key with `reduce`, and hash-partitions the result into `out_partitions`
  // partitions. This is a Spark stage boundary: every parent partition is
  // materialized (through the executor caches — where DAHI earns its keep),
  // shuffled over the fabric-equivalent cost model, and the reduced output
  // comes back as a materialized RDD. Keys become records via
  // key + reduced-value packing chosen by the caller's reduce function
  // domain; we keep (key, value) pairs as two records folded by `combine`.
  StatusOr<RddPtr> reduce_by_key(
      const RddPtr& rdd, const std::function<std::uint64_t(Record)>& key,
      const std::function<Record(Record, Record)>& reduce,
      std::size_t out_partitions);

  // Wide transformation: inner hash join. Records of `left` and `right`
  // are keyed by the respective key functions; for every key present on
  // both sides, combine(l, r) is emitted for each matching pair. Same
  // stage-boundary cost model as reduce_by_key.
  StatusOr<RddPtr> join(
      const RddPtr& left, const RddPtr& right,
      const std::function<std::uint64_t(Record)>& left_key,
      const std::function<std::uint64_t(Record)>& right_key,
      const std::function<Record(Record, Record)>& combine,
      std::size_t out_partitions);

  // Aggregated executor statistics.
  std::uint64_t shuffles() const noexcept { return shuffles_; }
  std::uint64_t total_hits() const;
  std::uint64_t total_recomputes() const;
  std::uint64_t total_offheap_fetches() const;

 private:
  Executor& executor_for(std::size_t partition) {
    return *executors_[partition % executors_.size()];
  }

  core::DmSystem& system_;
  Config config_;
  std::vector<std::unique_ptr<Executor>> executors_;
  std::uint64_t shuffles_ = 0;
};

}  // namespace dm::rdd
