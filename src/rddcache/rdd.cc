#include "rddcache/rdd.h"

#include <atomic>

namespace dm::rdd {

RddId Rdd::next_id() {
  static std::atomic<RddId> counter{1};
  return counter++;
}

RddPtr Rdd::source(std::string name, std::size_t partitions,
                   std::size_t records_per_partition,
                   std::function<Record(std::size_t, std::size_t)> generator) {
  auto rdd = std::shared_ptr<Rdd>(new Rdd());
  rdd->id_ = next_id();
  rdd->name_ = std::move(name);
  rdd->kind_ = Kind::kSource;
  rdd->partitions_ = partitions;
  rdd->records_per_partition_ = records_per_partition;
  rdd->generator_ = std::move(generator);
  return rdd;
}

RddPtr Rdd::materialized(std::string name,
                         std::vector<std::vector<Record>> partitions) {
  auto rdd = std::shared_ptr<Rdd>(new Rdd());
  rdd->id_ = next_id();
  rdd->name_ = std::move(name);
  rdd->kind_ = Kind::kSource;
  rdd->partitions_ = partitions.size();
  rdd->materialized_ = std::move(partitions);
  return rdd;
}

RddPtr Rdd::map(std::string name, std::function<Record(Record)> fn) const {
  auto rdd = std::shared_ptr<Rdd>(new Rdd());
  rdd->id_ = next_id();
  rdd->name_ = std::move(name);
  rdd->kind_ = Kind::kMap;
  rdd->partitions_ = partitions_;
  rdd->parent_ = shared_from_this();
  rdd->map_fn_ = std::move(fn);
  return rdd;
}

RddPtr Rdd::filter(std::string name, std::function<bool(Record)> pred) const {
  auto rdd = std::shared_ptr<Rdd>(new Rdd());
  rdd->id_ = next_id();
  rdd->name_ = std::move(name);
  rdd->kind_ = Kind::kFilter;
  rdd->partitions_ = partitions_;
  rdd->parent_ = shared_from_this();
  rdd->filter_fn_ = std::move(pred);
  return rdd;
}

std::vector<Record> Rdd::compute(std::size_t p,
                                 std::uint64_t* compute_ops) const {
  switch (kind_) {
    case Kind::kSource: {
      if (!materialized_.empty()) {
        if (compute_ops != nullptr) *compute_ops += materialized_[p].size();
        return materialized_[p];
      }
      std::vector<Record> out(records_per_partition_);
      for (std::size_t i = 0; i < records_per_partition_; ++i)
        out[i] = generator_(p, i);
      if (compute_ops != nullptr) *compute_ops += records_per_partition_;
      return out;
    }
    case Kind::kMap: {
      std::vector<Record> out = parent_->compute(p, compute_ops);
      for (Record& r : out) r = map_fn_(r);
      if (compute_ops != nullptr) *compute_ops += out.size();
      return out;
    }
    case Kind::kFilter: {
      std::vector<Record> in = parent_->compute(p, compute_ops);
      std::vector<Record> out;
      out.reserve(in.size());
      for (Record r : in)
        if (filter_fn_(r)) out.push_back(r);
      if (compute_ops != nullptr) *compute_ops += in.size();
      return out;
    }
  }
  return {};
}

}  // namespace dm::rdd
