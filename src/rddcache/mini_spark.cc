#include "rddcache/mini_spark.h"

#include <algorithm>
#include <unordered_map>

#include "common/status.h"
#include "common/units.h"
#include "core/dm_system.h"

namespace dm::rdd {

MiniSpark::MiniSpark(core::DmSystem& system, Config config)
    : system_(system), config_(std::move(config)) {
  for (std::size_t i = 0; i < config_.executors; ++i) {
    const std::size_t node = i % system_.node_count();
    auto& client =
        system_.create_server(node, config_.executor_memory, config_.ldmc,
                              cluster::ServerKind::kJvmExecutor);
    executors_.push_back(
        std::make_unique<Executor>(client, config_.executor));
  }
}

StatusOr<Record> MiniSpark::sum(const RddPtr& rdd) {
  Record total = 0;
  auto& sim = system_.simulator();
  for (std::size_t p = 0; p < rdd->partitions(); ++p) {
    Executor& exec = executor_for(p);
    auto records = exec.get_partition(rdd, p);
    if (!records.ok()) return records.status();
    for (Record r : *records) total += r;
    sim.run_until(sim.now() +
                  static_cast<SimTime>(records->size()) *
                      config_.executor.cpu_ns_per_record_scan);
  }
  return total;
}

StatusOr<std::uint64_t> MiniSpark::count(const RddPtr& rdd) {
  std::uint64_t total = 0;
  auto& sim = system_.simulator();
  for (std::size_t p = 0; p < rdd->partitions(); ++p) {
    Executor& exec = executor_for(p);
    auto records = exec.get_partition(rdd, p);
    if (!records.ok()) return records.status();
    total += records->size();
    sim.run_until(sim.now() +
                  static_cast<SimTime>(records->size()) *
                      config_.executor.cpu_ns_per_record_scan);
  }
  return total;
}

StatusOr<RddPtr> MiniSpark::reduce_by_key(
    const RddPtr& rdd, const std::function<std::uint64_t(Record)>& key,
    const std::function<Record(Record, Record)>& reduce,
    std::size_t out_partitions) {
  ++shuffles_;
  auto& sim = system_.simulator();
  // Map side: materialize every parent partition (cache-aware) and bucket
  // records by target partition, combining per key as Spark's map-side
  // combiner does.
  std::vector<std::unordered_map<std::uint64_t, Record>> buckets(
      out_partitions);
  std::uint64_t shuffled_records = 0;
  for (std::size_t p = 0; p < rdd->partitions(); ++p) {
    Executor& exec = executor_for(p);
    auto records = exec.get_partition(rdd, p);
    if (!records.ok()) return records.status();
    for (Record r : *records) {
      const std::uint64_t k = key(r);
      auto& bucket = buckets[k % out_partitions];
      auto [it, inserted] = bucket.try_emplace(k, r);
      if (!inserted) it->second = reduce(it->second, r);
      ++shuffled_records;
    }
  }
  // Stage boundary: charge the shuffle transfer.
  sim.run_until(sim.now() + static_cast<SimTime>(shuffled_records) *
                                config_.shuffle_ns_per_record);
  // Reduce side: deterministic order within each output partition.
  std::vector<std::vector<Record>> output(out_partitions);
  for (std::size_t p = 0; p < out_partitions; ++p) {
    std::vector<std::pair<std::uint64_t, Record>> sorted(buckets[p].begin(),
                                                         buckets[p].end());
    std::sort(sorted.begin(), sorted.end());
    output[p].reserve(sorted.size());
    for (const auto& [k, v] : sorted) output[p].push_back(v);
  }
  return Rdd::materialized(rdd->name() + ".reduced", std::move(output));
}

StatusOr<RddPtr> MiniSpark::join(
    const RddPtr& left, const RddPtr& right,
    const std::function<std::uint64_t(Record)>& left_key,
    const std::function<std::uint64_t(Record)>& right_key,
    const std::function<Record(Record, Record)>& combine,
    std::size_t out_partitions) {
  ++shuffles_;
  auto& sim = system_.simulator();
  // Map side of both inputs: bucket records by key into the target
  // partition space (cache-aware partition materialization).
  using Bucket = std::unordered_map<std::uint64_t, std::vector<Record>>;
  std::vector<Bucket> left_buckets(out_partitions);
  std::vector<Bucket> right_buckets(out_partitions);
  std::uint64_t shuffled_records = 0;

  auto scatter = [&](const RddPtr& rdd,
                     const std::function<std::uint64_t(Record)>& key,
                     std::vector<Bucket>& buckets) -> Status {
    for (std::size_t p = 0; p < rdd->partitions(); ++p) {
      Executor& exec = executor_for(p);
      auto records = exec.get_partition(rdd, p);
      if (!records.ok()) return records.status();
      for (Record r : *records) {
        const std::uint64_t k = key(r);
        buckets[k % out_partitions][k].push_back(r);
        ++shuffled_records;
      }
    }
    return Status::Ok();
  };
  DM_RETURN_IF_ERROR(scatter(left, left_key, left_buckets));
  DM_RETURN_IF_ERROR(scatter(right, right_key, right_buckets));
  sim.run_until(sim.now() + static_cast<SimTime>(shuffled_records) *
                                config_.shuffle_ns_per_record);

  // Reduce side: per output partition, deterministic key order, cross
  // product per key.
  std::vector<std::vector<Record>> output(out_partitions);
  for (std::size_t p = 0; p < out_partitions; ++p) {
    std::vector<std::uint64_t> keys;
    keys.reserve(left_buckets[p].size());
    for (const auto& [k, records] : left_buckets[p]) {
      if (right_buckets[p].count(k) > 0) keys.push_back(k);
    }
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t k : keys) {
      for (Record l : left_buckets[p][k])
        for (Record r : right_buckets[p][k])
          output[p].push_back(combine(l, r));
    }
  }
  return Rdd::materialized(left->name() + "*" + right->name(),
                           std::move(output));
}

std::uint64_t MiniSpark::total_hits() const {
  std::uint64_t total = 0;
  for (const auto& exec : executors_) total += exec->cache_hits();
  return total;
}

std::uint64_t MiniSpark::total_recomputes() const {
  std::uint64_t total = 0;
  for (const auto& exec : executors_) total += exec->recomputes();
  return total;
}

std::uint64_t MiniSpark::total_offheap_fetches() const {
  std::uint64_t total = 0;
  for (const auto& exec : executors_) total += exec->offheap_fetches();
  return total;
}

}  // namespace dm::rdd
