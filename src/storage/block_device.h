// Simulated rotational block device.
//
// Real data, virtual time: the device owns a real byte store; reads and
// writes move actual bytes and charge virtual time for seek + rotation
// (random access) or pure transfer (sequential access, detected by head
// position tracking), serialized through a single device queue. This is the
// substrate for the Linux swap baseline and for Infiniswap's asynchronous
// disk backup path — the paper's core performance argument is the gap
// between this device and the RDMA/shared-memory tiers.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/latency_model.h"
#include "sim/simulator.h"

namespace dm::storage {

using IoCallback = std::function<void(const Status&, SimTime completed_at)>;

class BlockDevice {
 public:
  struct Config {
    std::uint64_t capacity_bytes = 256 * MiB;
    sim::DiskModel model{};
    // Accesses within this distance of the previous I/O's end are treated
    // as sequential (no seek charge) — models track-buffer readahead.
    std::uint64_t sequential_window = 256 * KiB;
  };

  BlockDevice(sim::Simulator& simulator, Config config);

  std::uint64_t capacity() const noexcept { return store_.size(); }
  MetricsRegistry& metrics() noexcept { return metrics_; }

  // Asynchronous I/O; bytes land / are captured at completion time. The
  // caller's span must stay valid until the callback runs.
  Status read(std::uint64_t offset, std::span<std::byte> dest, IoCallback done);
  Status write(std::uint64_t offset, std::span<const std::byte> src,
               IoCallback done);

  // Synchronous helpers: drive the simulator until the I/O completes.
  // Only valid when the caller owns the run loop (workload drivers do).
  Status read_sync(std::uint64_t offset, std::span<std::byte> dest);
  Status write_sync(std::uint64_t offset, std::span<const std::byte> src);

  SimTime busy_until() const noexcept { return next_free_; }

 private:
  SimTime charge(std::uint64_t offset, std::uint64_t bytes);

  sim::Simulator& sim_;
  Config config_;
  MetricsRegistry metrics_;
  std::vector<std::byte> store_;
  SimTime next_free_ = 0;
  std::uint64_t head_pos_ = 0;  // byte offset just past the last I/O
};

// Page-slot allocator over a BlockDevice: fixed-size slots handed out to
// swap frontends. Free slots are recycled LIFO so sequential swap-out bursts
// tend to land on adjacent slots (as Linux's swap slot cache does).
class SwapExtentAllocator {
 public:
  SwapExtentAllocator(std::uint64_t capacity_bytes, std::uint64_t slot_bytes);

  StatusOr<std::uint64_t> allocate();  // returns byte offset of the slot
  void release(std::uint64_t offset);

  std::uint64_t slot_bytes() const noexcept { return slot_bytes_; }
  std::uint64_t total_slots() const noexcept { return total_slots_; }
  std::uint64_t used_slots() const noexcept {
    return next_fresh_slot_ - free_.size();
  }

 private:
  std::uint64_t slot_bytes_;
  std::uint64_t total_slots_;
  std::uint64_t next_fresh_slot_ = 0;
  std::vector<std::uint64_t> free_;
};

}  // namespace dm::storage
