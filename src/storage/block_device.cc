#include "storage/block_device.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace dm::storage {

BlockDevice::BlockDevice(sim::Simulator& simulator, Config config)
    : sim_(simulator), config_(config), store_(config.capacity_bytes) {}

SimTime BlockDevice::charge(std::uint64_t offset, std::uint64_t bytes) {
  const SimTime start = std::max(sim_.now(), next_free_);
  const std::uint64_t distance =
      offset >= head_pos_ ? offset - head_pos_ : head_pos_ - offset;
  const bool sequential = distance <= config_.sequential_window;
  SimTime cost = config_.model.transfer(bytes);
  if (!sequential) {
    cost += config_.model.seek_ns;
    ++metrics_.counter("disk.seeks");
  } else {
    ++metrics_.counter("disk.sequential");
  }
  next_free_ = start + cost;
  head_pos_ = offset + bytes;
  metrics_.counter("disk.bytes") += bytes;
  return next_free_;
}

Status BlockDevice::read(std::uint64_t offset, std::span<std::byte> dest,
                         IoCallback done) {
  if (offset + dest.size() > store_.size())
    return InvalidArgumentError("read past device end");
  const SimTime when = charge(offset, dest.size());
  ++metrics_.counter("disk.reads");
  sim_.schedule_at(when, [this, offset, dest, done = std::move(done), when]() {
    std::memcpy(dest.data(), store_.data() + offset, dest.size());
    if (done) done(Status::Ok(), when);
  });
  return Status::Ok();
}

Status BlockDevice::write(std::uint64_t offset, std::span<const std::byte> src,
                          IoCallback done) {
  if (offset + src.size() > store_.size())
    return InvalidArgumentError("write past device end");
  const SimTime when = charge(offset, src.size());
  ++metrics_.counter("disk.writes");
  // Capture the payload at post time (matches a kernel bio with its own
  // pages pinned).
  std::vector<std::byte> payload(src.begin(), src.end());
  sim_.schedule_at(
      when, [this, offset, payload = std::move(payload),
             done = std::move(done), when]() {
        std::memcpy(store_.data() + offset, payload.data(), payload.size());
        if (done) done(Status::Ok(), when);
      });
  return Status::Ok();
}

Status BlockDevice::read_sync(std::uint64_t offset, std::span<std::byte> dest) {
  bool completed = false;
  Status result;
  DM_RETURN_IF_ERROR(read(offset, dest, [&](const Status& s, SimTime) {
    result = s;
    completed = true;
  }));
  if (!sim_.run_until_flag(completed))
    return InternalError("simulation ran dry during disk read");
  return result;
}

Status BlockDevice::write_sync(std::uint64_t offset,
                               std::span<const std::byte> src) {
  bool completed = false;
  Status result;
  DM_RETURN_IF_ERROR(write(offset, src, [&](const Status& s, SimTime) {
    result = s;
    completed = true;
  }));
  if (!sim_.run_until_flag(completed))
    return InternalError("simulation ran dry during disk write");
  return result;
}

SwapExtentAllocator::SwapExtentAllocator(std::uint64_t capacity_bytes,
                                         std::uint64_t slot_bytes)
    : slot_bytes_(slot_bytes), total_slots_(capacity_bytes / slot_bytes) {}

StatusOr<std::uint64_t> SwapExtentAllocator::allocate() {
  if (!free_.empty()) {
    const std::uint64_t slot = free_.back();
    free_.pop_back();
    return slot * slot_bytes_;
  }
  if (next_fresh_slot_ >= total_slots_)
    return ResourceExhaustedError("swap device full");
  return next_fresh_slot_++ * slot_bytes_;
}

void SwapExtentAllocator::release(std::uint64_t offset) {
  free_.push_back(offset / slot_bytes_);
}

}  // namespace dm::storage
