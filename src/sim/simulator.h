// Deterministic discrete-event simulator.
//
// The whole library runs on virtual time: components schedule callbacks at
// virtual-nanosecond timestamps and the Simulator executes them in
// (time, insertion-sequence) order, so identical inputs and seeds produce
// bit-identical runs. The engine is single-threaded; "concurrency" in the
// modeled cluster comes from interleaved events, exactly as in the classic
// network-simulator tradition.
//
// Blocking-style code (e.g. a page fault that must wait for a remote read)
// uses run_until_flag(): post the asynchronous operation, then drain events
// until its completion flips a bool.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace dm::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const noexcept { return now_; }

  // Schedules fn at absolute virtual time `when` (>= now).
  void schedule_at(SimTime when, Callback fn) {
    assert(when >= now_);
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  // Schedules fn `delay` nanoseconds from now.
  void schedule_after(SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  bool has_pending() const noexcept { return !queue_.empty(); }
  std::size_t pending_count() const noexcept { return queue_.size(); }

  // Runs a single event; returns false if none pending.
  bool step();

  // Runs until the queue is empty.
  void run();

  // Runs events with timestamp <= deadline, then advances now to deadline.
  void run_until(SimTime deadline);

  // Runs until `flag` becomes true. Returns false if events ran dry first
  // (deadlock in the modeled system — callers treat this as a lost
  // completion) or if virtual time passes `deadline` (guards against
  // self-perpetuating background work, e.g. heartbeats, masking a lost
  // completion). deadline < 0 means no deadline.
  bool run_until_flag(const bool& flag, SimTime deadline = -1);

  // Advances the clock with no event processing (used by workload drivers to
  // charge pure compute time between memory accesses). Asserts that no event
  // would have fired in the skipped window when `strict` is true.
  void advance(SimTime delta) {
    assert(delta >= 0);
    now_ += delta;
  }

  std::uint64_t executed_events() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dm::sim
