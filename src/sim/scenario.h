// Declarative, seeded cluster-scale traffic scenarios (paper §I, §IV).
//
// A ScenarioEngine generates the multi-tenant situation the paper's
// imbalance argument starts from: tenants (VMs / containers / executors)
// arrive and depart over time, each with its own skewed working set, and
// the aggregate load breathes on a diurnal curve. The engine is a *pure
// script generator*: it knows nothing about nodes, KV stores or swap
// paths. Callers pull one Op at a time, advance the simulator to the op's
// virtual timestamp, and execute it against whatever stack is under test
// (an LDMC put/get, a KvStore set/get, a SwapManager touch). That keeps
// the engine below every other layer (it depends only on common/) and lets
// drivers use the synchronous *_sync APIs between ops, exactly like the
// existing soak tests.
//
// Determinism: every draw — arrival gaps, homes, working-set sizes, zipf
// ranks, lifetimes, op pacing — comes from one seeded Rng consumed in a
// fixed order by next(). Two engines with the same Config produce
// byte-identical op streams; the diurnal modulation is a pure function of
// virtual time (triangular wave, no trig, no floating-point accumulation
// across ops).
//
// Tenant homes are zipf-skewed toward low node ids, so large clusters
// reproduce the paper's §I situation: a few overloaded machines while the
// rest sit idle. The placement/harvest/migration machinery under test is
// what has to absorb that skew.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace dm::sim {

class ScenarioEngine {
 public:
  // Tenant / node ids are plain integers here (sim/ sits below net/ and
  // cluster/); NodeRef matches net::NodeId by value.
  using TenantId = std::uint32_t;
  using NodeRef = std::uint32_t;

  struct Config {
    std::uint64_t seed = 1;
    std::uint32_t node_count = 4;
    // Population: `initial_tenants` exist at time start(); further arrivals
    // follow an exponential clock with `mean_arrival_gap` until
    // `max_tenants` have ever been spawned. Each tenant departs after an
    // exponential lifetime (clamped to the scenario horizon).
    std::uint32_t initial_tenants = 4;
    std::uint32_t max_tenants = 16;
    SimTime mean_arrival_gap = 500 * kMilli;
    SimTime mean_lifetime = 10 * kSecond;
    // Working sets: per-tenant size in pages/keys, drawn log-uniformly from
    // [min_working_set, max_working_set]. Accesses within a working set are
    // zipf(zipf_theta)-skewed (YCSB-style hot keys).
    std::uint64_t min_working_set = 32;
    std::uint64_t max_working_set = 256;
    double zipf_theta = 0.99;
    // Tenant homes are zipf(node_skew)-distributed over [0, node_count):
    // low node ids collect a disproportionate share of tenants — the
    // paper's "busy machines next to idle ones". 0 = uniform.
    double node_skew = 0.6;
    double write_fraction = 0.35;
    // Pacing: per-tenant think time between ops is exponential around
    // `mean_op_gap`, divided by the diurnal multiplier.
    SimTime mean_op_gap = 2 * kMilli;
    // Diurnal load curve: the op-rate multiplier follows a triangular wave
    // through [1 - depth, 1 + depth] with this period (0 depth = flat).
    double diurnal_depth = 0.5;
    SimTime diurnal_period = 8 * kSecond;
    // Scenario horizon, relative to start(). No op is generated past it and
    // all tenants retire by it.
    SimTime duration = 30 * kSecond;
  };

  struct Op {
    enum class Kind {
      kSpawn,   // tenant appears: allocate its state on `home`
      kAccess,  // tenant touches `index` (< working_set) in its set
      kRetire,  // tenant departs: tear its state down
      kDone,    // scenario exhausted (at == horizon)
    };
    Kind kind = Kind::kDone;
    SimTime at = 0;  // absolute virtual time the op is due
    TenantId tenant = 0;
    NodeRef home = 0;             // kSpawn only
    std::uint64_t working_set = 0;  // kSpawn only
    std::uint64_t index = 0;        // kAccess only
    bool write = false;             // kAccess only
  };

  explicit ScenarioEngine(Config config);

  // Anchors the scenario clock; ops are generated in [now, now + duration].
  void start(SimTime now);

  // Returns the next op in non-decreasing time order. After the horizon,
  // emits one kRetire per still-active tenant (at the horizon), then kDone
  // forever. Callers typically: run_until(op.at), execute, repeat.
  Op next();

  // Cancels a tenant's remaining ops (e.g. its spawn was rejected). Its
  // retirement op is emitted immediately on the next next() call.
  void retire_now(TenantId tenant);

  // Diurnal op-rate multiplier at absolute time `now` (exposed for tests).
  double load_multiplier(SimTime now) const;

  // --- accounting -----------------------------------------------------------
  std::uint64_t tenants_spawned() const noexcept { return spawned_; }
  std::uint64_t tenants_retired() const noexcept { return retired_; }
  std::uint64_t ops_issued() const noexcept { return ops_; }
  std::uint64_t writes_issued() const noexcept { return writes_; }
  std::uint32_t active_tenants() const noexcept { return active_; }
  std::uint32_t peak_active() const noexcept { return peak_active_; }

 private:
  struct Tenant {
    NodeRef home = 0;
    std::uint64_t working_set = 0;
    SimTime next_op = 0;
    SimTime retire_at = 0;
    bool active = false;
    bool forced_retire = false;
    std::unique_ptr<ZipfGenerator> zipf;
  };

  Op spawn_tenant(SimTime at);
  SimTime draw_op_gap(SimTime now);

  Config config_;
  Rng rng_;
  ZipfGenerator node_zipf_;
  SimTime start_ = 0;
  SimTime horizon_ = 0;
  SimTime next_arrival_ = 0;
  bool started_ = false;
  // Ordered by tenant id so the earliest-deadline scan is deterministic.
  std::map<TenantId, Tenant> tenants_;
  TenantId next_tenant_ = 0;
  std::uint64_t spawned_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t writes_ = 0;
  std::uint32_t active_ = 0;
  std::uint32_t peak_active_ = 0;
};

}  // namespace dm::sim
