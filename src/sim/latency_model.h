// Latency/bandwidth cost models for the memory/storage/network tiers.
//
// Calibration (see DESIGN.md §5) follows the paper's §VI hierarchy and its
// testbed: 56 Gbps FDR InfiniBand, SATA 7.2K disks, DDR3-era DRAM. Every
// figure-reproduction bench takes a LatencyModel so sweeps can move the
// tiers relative to each other (e.g. "what if remote memory approached DRAM
// speed" — the paper's full-disaggregation feasibility question).
#pragma once

#include <cstdint>

#include "common/units.h"

namespace dm::sim {

// Fixed per-operation overhead plus a linear per-byte cost.
struct CostModel {
  SimTime overhead_ns = 0;
  double gib_per_s = 1.0;

  SimTime cost(std::uint64_t bytes) const noexcept {
    const double ns_per_byte = 1e9 / (gib_per_s * static_cast<double>(GiB));
    return overhead_ns +
           static_cast<SimTime>(ns_per_byte * static_cast<double>(bytes));
  }
};

// Rotational disk: random access pays seek+rotation; sequential access only
// pays transfer. The BlockDevice tracks the head position to decide which.
struct DiskModel {
  SimTime seek_ns = 6 * kMilli;       // avg seek + rotational delay, 7.2K SATA
  double mib_per_s = 150.0;           // sustained transfer rate

  SimTime transfer(std::uint64_t bytes) const noexcept {
    const double ns_per_byte = 1e9 / (mib_per_s * static_cast<double>(MiB));
    return static_cast<SimTime>(ns_per_byte * static_cast<double>(bytes));
  }
};

struct LatencyModel {
  // Local DRAM access by the application (cache-miss granularity is folded
  // into workload compute time; this is for explicit page copies).
  CostModel dram{100, 20.0};
  // Node-coordinated shared memory: same silicon as DRAM plus the client/
  // server handoff between the virtual server and the node manager.
  CostModel shared_memory{250, 18.0};
  // One-sided RDMA verb on FDR 4x: ~1.5 us post-to-completion for small
  // messages, ~6 GB/s payload bandwidth.
  CostModel rdma{1500, 6.0};
  // Two-sided send/recv costs slightly more (receiver CPU involvement).
  CostModel rdma_send{2000, 6.0};
  // CXL-class coherent load/store transaction (the paper's §III feasibility
  // question: remote memory approached through the cache hierarchy, no page
  // fault). Per-transaction overhead in the hundreds of ns and near-memory
  // bandwidth — a line fill lands ~4x under an RDMA READ, which is what
  // makes it a distinct tier between DRAM and RDMA paging.
  CostModel cxl{150, 30.0};
  DiskModel disk{};
  // Fixed propagation component per fabric hop (same rack).
  SimTime link_propagation_ns = 300;

  static LatencyModel Default() { return {}; }

  // Named fabric generations (paper §IV.G lists InfiniBand SDR..FDR, RoCE,
  // iWARP; the CXL-class row extrapolates §III's feasibility question).
  static LatencyModel InfinibandFdr() { return {}; }  // the paper's testbed
  static LatencyModel InfinibandQdr() {
    LatencyModel m;
    m.rdma = {3000, 3.5};
    m.rdma_send = {3500, 3.5};
    return m;
  }
  static LatencyModel Roce40G() {
    LatencyModel m;
    m.rdma = {2500, 4.5};
    m.rdma_send = {3200, 4.5};
    return m;
  }
  static LatencyModel Iwarp10G() {
    LatencyModel m;
    m.rdma = {10000, 1.0};
    m.rdma_send = {12000, 1.0};
    return m;
  }
  static LatencyModel CxlClass() {
    LatencyModel m;
    m.rdma = {300, 40.0};
    m.rdma_send = {500, 40.0};
    return m;
  }
};

}  // namespace dm::sim
