// Failure scheduling for fault-tolerance tests and benches.
//
// The injector does not know about nodes or links; it binds arbitrary fault
// and repair actions to virtual times, plus a Poisson process helper for
// random fault storms. Determinism: all randomness comes from the caller's
// seeded Rng.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "common/rng.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace dm::sim {

class FailureInjector {
 public:
  explicit FailureInjector(Simulator& simulator) : sim_(simulator) {}

  Simulator& simulator() noexcept { return sim_; }

  // One-shot fault at an absolute time.
  void at(SimTime when, std::function<void()> action) {
    sim_.schedule_at(when, std::move(action));
  }

  // Fault at `when`, repair at `when + outage`.
  void outage(SimTime when, SimTime duration, std::function<void()> fail,
              std::function<void()> repair) {
    sim_.schedule_at(when, std::move(fail));
    sim_.schedule_at(when + duration, std::move(repair));
  }

  // Poisson fault process: actions fire with exponential inter-arrival of
  // the given mean, from `start` until `stop`. The action is taken by value
  // once and shared across every firing, so stateful actions (mutable
  // lambdas carrying crash counters, toggles) see one accumulating state
  // instead of a per-event copy of the initial state.
  void poisson(Rng& rng, SimTime start, SimTime stop, SimTime mean_interval,
               std::function<void()> action) {
    auto shared =
        std::make_shared<std::function<void()>>(std::move(action));
    SimTime t = start + static_cast<SimTime>(
                            rng.exponential(static_cast<double>(mean_interval)));
    while (t < stop) {
      sim_.schedule_at(t, [shared]() { (*shared)(); });
      t += static_cast<SimTime>(
          rng.exponential(static_cast<double>(mean_interval)));
    }
  }

 private:
  Simulator& sim_;
};

}  // namespace dm::sim
