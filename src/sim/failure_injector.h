// Failure scheduling for fault-tolerance tests and benches.
//
// The injector does not know about nodes or links; it binds arbitrary fault
// and repair actions to virtual times, plus a Poisson process helper for
// random fault storms. Determinism: all randomness comes from the caller's
// seeded Rng.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/rng.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace dm::sim {

class FailureInjector {
 public:
  // Observer invoked right before each injected fault action fires, with
  // the label the scheduling site supplied. The flight recorder hangs off
  // this: a crash dump should capture the ring as it was at the instant of
  // the fault, before repair traffic overwrites it.
  using FaultListener = std::function<void(std::string_view label)>;

  explicit FailureInjector(Simulator& simulator) : sim_(simulator) {}

  Simulator& simulator() noexcept { return sim_; }

  // Registers the fault observer (null detaches). One listener: the last
  // registration wins, which keeps firing order trivially deterministic.
  void set_fault_listener(FaultListener listener) {
    listener_ = std::make_shared<FaultListener>(std::move(listener));
  }

  // One-shot fault at an absolute time. `label` names the fault for the
  // listener ("" = unlabeled; the listener still fires).
  void at(SimTime when, std::function<void()> action,
          std::string label = {}) {
    sim_.schedule_at(when, wrap(std::move(action), std::move(label)));
  }

  // Fault at `when`, repair at `when + outage`. Only the fault leg notifies
  // the listener; the repair is not a fault.
  void outage(SimTime when, SimTime duration, std::function<void()> fail,
              std::function<void()> repair, std::string label = {}) {
    sim_.schedule_at(when, wrap(std::move(fail), std::move(label)));
    sim_.schedule_at(when + duration, std::move(repair));
  }

  // Poisson fault process: actions fire with exponential inter-arrival of
  // the given mean, from `start` until `stop`. The action is taken by value
  // once and shared across every firing, so stateful actions (mutable
  // lambdas carrying crash counters, toggles) see one accumulating state
  // instead of a per-event copy of the initial state.
  void poisson(Rng& rng, SimTime start, SimTime stop, SimTime mean_interval,
               std::function<void()> action, std::string label = {}) {
    auto shared =
        std::make_shared<std::function<void()>>(std::move(action));
    auto shared_label = std::make_shared<std::string>(std::move(label));
    SimTime t = start + static_cast<SimTime>(
                            rng.exponential(static_cast<double>(mean_interval)));
    while (t < stop) {
      sim_.schedule_at(t, [this, shared, shared_label]() {
        notify_fault(*shared_label);
        (*shared)();
      });
      t += static_cast<SimTime>(
          rng.exponential(static_cast<double>(mean_interval)));
    }
  }

  // Fires the fault listener now. Layers that gate faults at fire time
  // (ChaosSchedule's can_crash guard) call this themselves once the fault
  // is definitely happening, instead of labeling the scheduled action.
  void notify_fault(std::string_view label) {
    // Snapshot the shared_ptr: a listener replaced mid-run keeps firing
    // correctly for already-scheduled faults.
    auto listener = listener_;
    if (listener != nullptr && *listener) (*listener)(label);
  }

 private:
  std::function<void()> wrap(std::function<void()> action,
                             std::string label) {
    return [this, action = std::move(action),
            label = std::move(label)]() {
      notify_fault(label);
      action();
    };
  }

  Simulator& sim_;
  std::shared_ptr<FaultListener> listener_;
};

}  // namespace dm::sim
