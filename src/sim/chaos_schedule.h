// Declarative, seeded chaos scenarios on top of the FailureInjector.
//
// A ChaosSchedule turns "what can go wrong in the cluster" into a scripted,
// reproducible scenario: node crashes with bounded outages, network
// partitions between node sets, latency-spike windows, and packet-loss
// windows, plus a Poisson crash/repair storm for soak tests. The schedule
// itself knows nothing about the fabric or the membership layer — the
// caller binds Hooks (typically to DmSystem::crash_node / recover_node and
// Fabric::set_link_up / set_latency_scale / set_message_loss) and the
// schedule fires them at virtual times.
//
// Determinism: all random draws (storm arrival times, victims, outage
// jitter) happen at *schedule-build* time from the caller's seeded Rng, so
// the full fault script is fixed before the first event fires and two runs
// with the same seed inject byte-identical fault sequences. Only the
// `can_crash` guard is consulted at fire time, letting tests veto a crash
// that would violate an invariant (e.g. "never kill the last live replica")
// without perturbing the draw stream.
//
// Lifetime: scheduled events capture `this`; the schedule must outlive the
// simulation window it was built for.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/failure_injector.h"

namespace dm::sim {

class ChaosSchedule {
 public:
  // Node ids are plain integers here (sim/ sits below net/); they match
  // net::NodeId by value.
  using NodeRef = std::uint32_t;

  struct Hooks {
    std::function<void(NodeRef)> crash_node;
    std::function<void(NodeRef)> recover_node;
    // Directed link control, applied in both directions by partition().
    std::function<void(NodeRef, NodeRef, bool)> set_link_up;
    std::function<void(double)> set_latency_scale;
    std::function<void(double)> set_message_loss;
    // Consulted immediately before a *storm* crash fires; returning false
    // skips that crash (and its recovery). Unset = always allowed.
    std::function<bool(NodeRef)> can_crash;
  };

  ChaosSchedule(FailureInjector& injector, Hooks hooks);

  // --- declarative one-shot scenarios ---------------------------------------
  // Crash `node` at `at`, recover it at `at + outage`.
  void crash(SimTime at, NodeRef node, SimTime outage);
  // Cut every link between side_a and side_b (both directions) for
  // `duration`, then heal.
  void partition(SimTime at, std::vector<NodeRef> side_a,
                 std::vector<NodeRef> side_b, SimTime duration);
  // Scale fabric latency by `scale` during [at, at + duration).
  void latency_spike(SimTime at, double scale, SimTime duration);
  // Drop control-plane messages with `probability` during [at, at+duration).
  void packet_loss(SimTime at, double probability, SimTime duration);

  // --- seeded storms --------------------------------------------------------
  // Poisson crash/repair storm over `nodes` in [start, stop): crash events
  // arrive with exponential inter-arrival `mean_interval`; each crash picks
  // a uniform victim and recovers it after `outage`. Crashes whose guard
  // (Hooks::can_crash) rejects the victim at fire time are counted in
  // skipped_crashes() and leave the cluster untouched.
  void poisson_crash_storm(Rng& rng, SimTime start, SimTime stop,
                           SimTime mean_interval, SimTime outage,
                           std::vector<NodeRef> nodes);

  // --- accounting (asserted by chaos tests) ---------------------------------
  std::uint64_t crashes_fired() const noexcept { return crashes_fired_; }
  std::uint64_t skipped_crashes() const noexcept { return skipped_crashes_; }
  std::uint64_t partitions_fired() const noexcept { return partitions_fired_; }
  std::uint64_t latency_spikes_fired() const noexcept {
    return latency_spikes_fired_;
  }
  std::uint64_t loss_windows_fired() const noexcept {
    return loss_windows_fired_;
  }

 private:
  void fire_crash(NodeRef node, SimTime outage, bool guarded);

  FailureInjector& injector_;
  Hooks hooks_;
  std::uint64_t crashes_fired_ = 0;
  std::uint64_t skipped_crashes_ = 0;
  std::uint64_t partitions_fired_ = 0;
  std::uint64_t latency_spikes_fired_ = 0;
  std::uint64_t loss_windows_fired_ = 0;
};

}  // namespace dm::sim
