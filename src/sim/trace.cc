#include "sim/trace.h"

namespace dm::sim {

std::string Tracer::to_string(std::size_t last_n) const {
  std::string out;
  for (const Event& event : recent(last_n)) {
    out += '[';
    out += format_duration(event.at);
    out += "] ";
    out += event.category;
    out += ": ";
    out += event.detail;
    out += '\n';
  }
  return out;
}

}  // namespace dm::sim
