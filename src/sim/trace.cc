#include "sim/trace.h"

namespace dm::sim {

std::string Tracer::format(const std::vector<Event>& events) {
  std::string out;
  for (const Event& event : events) {
    out += '[';
    out += format_duration(event.at);
    out += "] ";
    out += event.category;
    out += ": ";
    out += event.detail;
    out += '\n';
  }
  return out;
}

std::string Tracer::to_string(std::size_t last_n) const {
  return format(recent(last_n));
}

}  // namespace dm::sim
