#include "sim/chaos_schedule.h"

#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "sim/failure_injector.h"

namespace dm::sim {

ChaosSchedule::ChaosSchedule(FailureInjector& injector, Hooks hooks)
    : injector_(injector), hooks_(std::move(hooks)) {}

void ChaosSchedule::fire_crash(NodeRef node, SimTime outage, bool guarded) {
  if (guarded && hooks_.can_crash && !hooks_.can_crash(node)) {
    ++skipped_crashes_;
    return;
  }
  ++crashes_fired_;
  // The crash is definitely happening: let the injector's fault listener
  // (the flight recorder) capture state before the node goes down and
  // repair traffic overwrites the recent-event rings.
  injector_.notify_fault("chaos.crash." + std::to_string(node));
  hooks_.crash_node(node);
  injector_.at(injector_.simulator().now() + outage,
               [this, node]() { hooks_.recover_node(node); });
}

void ChaosSchedule::crash(SimTime at, NodeRef node, SimTime outage) {
  injector_.at(at, [this, node, outage]() {
    fire_crash(node, outage, /*guarded=*/false);
  });
}

void ChaosSchedule::partition(SimTime at, std::vector<NodeRef> side_a,
                              std::vector<NodeRef> side_b,
                              SimTime duration) {
  auto flip = [this, side_a, side_b](bool up) {
    for (NodeRef a : side_a) {
      for (NodeRef b : side_b) {
        hooks_.set_link_up(a, b, up);
        hooks_.set_link_up(b, a, up);
      }
    }
  };
  injector_.outage(
      at, duration,
      [this, flip]() {
        ++partitions_fired_;
        flip(false);
      },
      [flip]() { flip(true); });
}

void ChaosSchedule::latency_spike(SimTime at, double scale,
                                  SimTime duration) {
  injector_.outage(
      at, duration,
      [this, scale]() {
        ++latency_spikes_fired_;
        hooks_.set_latency_scale(scale);
      },
      [this]() { hooks_.set_latency_scale(1.0); });
}

void ChaosSchedule::packet_loss(SimTime at, double probability,
                                SimTime duration) {
  injector_.outage(
      at, duration,
      [this, probability]() {
        ++loss_windows_fired_;
        hooks_.set_message_loss(probability);
      },
      [this]() { hooks_.set_message_loss(0.0); });
}

void ChaosSchedule::poisson_crash_storm(Rng& rng, SimTime start, SimTime stop,
                                        SimTime mean_interval, SimTime outage,
                                        std::vector<NodeRef> nodes) {
  if (nodes.empty()) return;
  // Arrival times and victims are all drawn now, so the storm script is
  // fully determined by the caller's Rng state at this point.
  SimTime t = start + static_cast<SimTime>(
                          rng.exponential(static_cast<double>(mean_interval)));
  while (t < stop) {
    const NodeRef victim = nodes[rng.next_below(nodes.size())];
    injector_.at(t, [this, victim, outage]() {
      fire_crash(victim, outage, /*guarded=*/true);
    });
    t += static_cast<SimTime>(
        rng.exponential(static_cast<double>(mean_interval)));
  }
}

}  // namespace dm::sim
