// Bounded event tracer for debugging simulated runs.
//
// Components that accept a Tracer record (virtual time, category, detail)
// triples into a fixed-capacity ring; when something goes wrong in a long
// deterministic run, the last few thousand events explain it without
// re-running under a debugger. Disabled (the default, no tracer attached)
// it costs one pointer test per event site.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"

namespace dm::sim {

class Tracer {
 public:
  struct Event {
    SimTime at = 0;
    std::string category;
    std::string detail;
  };

  explicit Tracer(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(SimTime at, std::string category, std::string detail) {
    if (capacity_ == 0) return;
    if (events_.size() == capacity_) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(Event{at, std::move(category), std::move(detail)});
  }

  std::size_t size() const noexcept { return events_.size(); }
  std::uint64_t dropped() const noexcept { return dropped_; }

  // Most recent `n` events, oldest first.
  std::vector<Event> recent(std::size_t n) const {
    const std::size_t count = std::min(n, events_.size());
    // Never form end() - count on the empty deque: libstdc++ deque
    // iterator arithmetic on a value-initialized/empty range is UB.
    if (count == 0) return {};
    return {events_.end() - static_cast<std::ptrdiff_t>(count),
            events_.end()};
  }

  // All retained events of one category, oldest first.
  std::vector<Event> by_category(std::string_view category) const {
    std::vector<Event> out;
    for (const Event& event : events_)
      if (event.category == category) out.push_back(event);
    return out;
  }

  // All retained events whose detail contains `needle`, oldest first — the
  // way to follow one trace id ("trace=3:17") across subsystems and nodes.
  std::vector<Event> matching(std::string_view needle) const {
    std::vector<Event> out;
    for (const Event& event : events_)
      if (event.detail.find(needle) != std::string::npos) out.push_back(event);
    return out;
  }

  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  // "[123.45us] fabric.write: node0 -> node1, 4096B" lines.
  std::string to_string(std::size_t last_n = 64) const;

  // Pretty-printed dump of an event subset (e.g. matching()/by_category()
  // results), same line format as to_string().
  static std::string format(const std::vector<Event>& events);

 private:
  std::size_t capacity_;
  std::deque<Event> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace dm::sim
