// Abstract causal-span sink.
//
// Instrumented subsystems (RPC, fabric, node service, swap) open and close
// spans against this interface without depending on the obs layer; the
// concrete implementation is obs::SpanTracer. Trace ids are the net-layer
// TraceId values carried on the RPC wire, passed here as plain integers so
// this header stays at the sim layer of the dependency DAG.
//
// Contract: begin_span/end_span are passive — they may read the simulator
// clock but must never schedule events, so attaching a sink cannot perturb
// the event order of a seeded run.
#pragma once

#include <cstdint>
#include <string_view>

namespace dm::sim {

class SpanSink {
 public:
  virtual ~SpanSink() = default;

  // Opens a span on `node` attributed to (subsystem, name), causally tied to
  // `trace` (a net::TraceId; 0 = untraced, the sink may drop it). Returns an
  // opaque span handle; 0 means the span was dropped and must not be ended.
  //
  // dm-lint: allow(span-unclosed) — this is the interface declaration.
  virtual std::uint64_t begin_span(std::uint64_t trace, std::uint32_t node,
                                   std::string_view subsystem,
                                   std::string_view name) = 0;
  virtual void end_span(std::uint64_t span) = 0;

  // Point-in-time annotation on `trace` (flight-recorder fodder).
  virtual void event(std::uint64_t trace, std::uint32_t node,
                     std::string_view category, std::string_view detail) = 0;
};

// RAII guard: opens a span on construction (if the sink is non-null and the
// trace is real) and closes it on destruction or explicit close(). This is
// the form the dm_lint `span-unclosed` rule expects at instrumentation
// sites.
class SpanScope {
 public:
  SpanScope(SpanSink* sink, std::uint64_t trace, std::uint32_t node,
            std::string_view subsystem, std::string_view name)
      : sink_(sink) {
    if (sink_ != nullptr && trace != 0) {
      // Guard owns the pair; every exit closes it. dm-lint: allow(span-unclosed)
      span_ = sink_->begin_span(trace, node, subsystem, name);
    }
  }
  ~SpanScope() { close(); }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  // Ends the span now (idempotent); lets callers close before trailing work
  // that should not be attributed to the span.
  void close() {
    if (sink_ != nullptr && span_ != 0) sink_->end_span(span_);
    span_ = 0;
  }

  bool active() const noexcept { return span_ != 0; }

 private:
  SpanSink* sink_ = nullptr;
  std::uint64_t span_ = 0;
};

}  // namespace dm::sim
