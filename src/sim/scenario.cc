#include "sim/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/units.h"

namespace dm::sim {

ScenarioEngine::ScenarioEngine(Config config)
    : config_(config), rng_(mix64(config.seed ^ 0x5ce9a210ULL)),
      node_zipf_(config.node_count == 0 ? 1 : config.node_count,
                 config.node_skew) {}

void ScenarioEngine::start(SimTime now) {
  start_ = now;
  horizon_ = now + config_.duration;
  started_ = true;
  // Initial population exists at the start instant; the arrival clock for
  // the rest begins ticking immediately after.
  next_arrival_ =
      now + static_cast<SimTime>(rng_.exponential(
                static_cast<double>(config_.mean_arrival_gap)));
}

double ScenarioEngine::load_multiplier(SimTime now) const {
  if (config_.diurnal_depth <= 0.0 || config_.diurnal_period <= 0) return 1.0;
  // Triangular wave through [1 - depth, 1 + depth]: rises over the first
  // half-period, falls over the second. Pure function of virtual time.
  const SimTime period = config_.diurnal_period;
  const SimTime phase = (now - start_) % period;
  const double unit =
      phase * 2 < period
          ? static_cast<double>(phase) * 2.0 / static_cast<double>(period)
          : 2.0 - static_cast<double>(phase) * 2.0 / static_cast<double>(period);
  return 1.0 - config_.diurnal_depth + 2.0 * config_.diurnal_depth * unit;
}

SimTime ScenarioEngine::draw_op_gap(SimTime now) {
  const double gap = rng_.exponential(
      static_cast<double>(config_.mean_op_gap) / load_multiplier(now));
  return std::max<SimTime>(1, static_cast<SimTime>(gap));
}

ScenarioEngine::Op ScenarioEngine::spawn_tenant(SimTime at) {
  const TenantId id = next_tenant_++;
  Tenant t;
  t.home = static_cast<NodeRef>(node_zipf_.next(rng_));
  // Log-uniform working-set size: skewed small with a heavy tail, so one
  // scenario mixes light tenants with a few elephants.
  const double lo = std::log2(static_cast<double>(config_.min_working_set));
  const double hi = std::log2(static_cast<double>(
      std::max(config_.max_working_set, config_.min_working_set)));
  t.working_set = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::exp2(lo + (hi - lo) * rng_.next_double())));
  t.zipf = std::make_unique<ZipfGenerator>(t.working_set, config_.zipf_theta);
  t.retire_at = std::min<SimTime>(
      horizon_, at + std::max<SimTime>(1, static_cast<SimTime>(rng_.exponential(
                         static_cast<double>(config_.mean_lifetime)))));
  t.next_op = at + draw_op_gap(at);
  t.active = true;
  ++spawned_;
  ++active_;
  peak_active_ = std::max(peak_active_, active_);

  Op op;
  op.kind = Op::Kind::kSpawn;
  op.at = at;
  op.tenant = id;
  op.home = t.home;
  op.working_set = t.working_set;
  tenants_.emplace(id, std::move(t));
  return op;
}

void ScenarioEngine::retire_now(TenantId tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.active) return;
  it->second.forced_retire = true;
}

ScenarioEngine::Op ScenarioEngine::next() {
  if (!started_) return Op{};

  // Forced retirements jump the queue (their ops are already cancelled).
  for (auto& [id, t] : tenants_) {
    if (!t.active || !t.forced_retire) continue;
    t.active = false;
    ++retired_;
    --active_;
    Op op;
    op.kind = Op::Kind::kRetire;
    op.at = std::min(std::max(t.next_op, start_), horizon_);
    op.tenant = id;
    return op;
  }

  // Earliest pending event across: the arrival clock, every active
  // tenant's next op, every active tenant's retirement. Ties resolve
  // retire < access (a retiring tenant issues no further ops at the same
  // instant) and lowest tenant id first; the arrival clock loses ties so
  // existing tenants quiesce before new ones appear at the same instant.
  constexpr int kRetire = 0, kAccess = 1, kArrive = 2;
  SimTime best_at = horizon_;
  int best_kind = -1;
  TenantId best_tenant = 0;
  for (const auto& [id, t] : tenants_) {
    if (!t.active) continue;
    if (t.retire_at <= best_at &&
        (best_kind == -1 || t.retire_at < best_at)) {
      best_at = t.retire_at;
      best_kind = kRetire;
      best_tenant = id;
    }
    if (t.next_op < t.retire_at &&
        (best_kind == -1 || t.next_op < best_at)) {
      best_at = t.next_op;
      best_kind = kAccess;
      best_tenant = id;
    }
  }
  if (spawned_ < config_.max_tenants) {
    const SimTime arrive_at =
        spawned_ < config_.initial_tenants ? start_ : next_arrival_;
    if (arrive_at <= horizon_ && (best_kind == -1 || arrive_at < best_at)) {
      best_at = arrive_at;
      best_kind = kArrive;
    }
  }

  if (best_kind == kArrive) {
    if (spawned_ >= config_.initial_tenants)
      next_arrival_ =
          best_at + std::max<SimTime>(1, static_cast<SimTime>(rng_.exponential(
                        static_cast<double>(config_.mean_arrival_gap))));
    return spawn_tenant(best_at);
  }
  if (best_kind == kRetire) {
    Tenant& t = tenants_[best_tenant];
    t.active = false;
    ++retired_;
    --active_;
    Op op;
    op.kind = Op::Kind::kRetire;
    op.at = best_at;
    op.tenant = best_tenant;
    return op;
  }
  if (best_kind == kAccess) {
    Tenant& t = tenants_[best_tenant];
    Op op;
    op.kind = Op::Kind::kAccess;
    op.at = best_at;
    op.tenant = best_tenant;
    op.index = t.zipf->next(rng_);
    op.write = rng_.bernoulli(config_.write_fraction);
    t.next_op = best_at + draw_op_gap(best_at);
    ++ops_;
    if (op.write) ++writes_;
    return op;
  }

  // Horizon passed and no tenant active: the scenario is exhausted.
  Op op;
  op.kind = Op::Kind::kDone;
  op.at = horizon_;
  return op;
}

}  // namespace dm::sim
