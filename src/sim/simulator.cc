#include "sim/simulator.h"

#include <utility>

#include "common/units.h"

namespace dm::sim {

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the event is copied out so the callback
  // may schedule further events (including at the same timestamp).
  Event ev = queue_.top();
  queue_.pop();
  // Defensive monotonicity: advance() may have moved the clock past a
  // queued event; such an event fires "late" rather than rewinding time.
  if (ev.when > now_) now_ = ev.when;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

bool Simulator::run_until_flag(const bool& flag, SimTime deadline) {
  while (!flag) {
    if (deadline >= 0 && now_ > deadline) return false;
    if (!step()) return false;
  }
  return true;
}

}  // namespace dm::sim
