#include "obs/profiler.h"

#include <cstdio>

#include "common/units.h"
#include "obs/span.h"

namespace dm::obs {
namespace {

std::string fixed3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

void Profiler::ingest(const SpanTracer::Completed& done) {
  ++traces_;
  attributed_ns_ += done.breakdown.total;
  if (!done.root_name.empty()) {
    Root& root = roots_[done.root_name];
    ++root.count;
    root.total_ns += done.breakdown.total;
  }
  for (const auto& [subsystem, ns] : done.breakdown.by_subsystem)
    by_subsystem_[subsystem] += ns;
  for (const auto& [site, ns] : done.breakdown.by_site) sites_[site].self_ns += ns;
  for (const auto& [site, n] : done.breakdown.span_counts)
    sites_[site].calls += n;
}

std::size_t Profiler::ingest_all(SpanTracer& tracer) {
  const auto completed = tracer.drain_completed();
  for (const SpanTracer::Completed& done : completed) ingest(done);
  return completed.size();
}

double Profiler::events_per_virtual_second() const {
  const SimTime window = window_ns();
  if (window <= 0) return 0.0;
  return static_cast<double>(window_events()) /
         (static_cast<double>(window) / 1e9);
}

std::string Profiler::to_json(std::string_view name, std::uint64_t seed) const {
  std::string out = "{\n";
  out += "  \"tool\": \"dm_profile\",\n";
  out += "  \"name\": \"" + std::string(name) + "\",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"window_virtual_ns\": " + std::to_string(window_ns()) + ",\n";
  out += "  \"window_events\": " + std::to_string(window_events()) + ",\n";
  out += "  \"events_per_virtual_sec\": " + fixed3(events_per_virtual_second()) +
         ",\n";
  out += "  \"traces\": " + std::to_string(traces_) + ",\n";
  out += "  \"attributed_ns\": " + std::to_string(attributed_ns_) + ",\n";

  out += "  \"roots\": {";
  bool first = true;
  for (const auto& [root_name, root] : roots_) {
    out += first ? "\n" : ",\n";
    first = false;
    const double per = root.count == 0
                           ? 0.0
                           : static_cast<double>(root.total_ns) /
                                 static_cast<double>(root.count);
    out += "    \"" + root_name + "\": {\"count\": " +
           std::to_string(root.count) + ", \"total_ns\": " +
           std::to_string(root.total_ns) + ", \"ns_per\": " + fixed3(per) + "}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"by_subsystem_ns\": {";
  first = true;
  for (const auto& [subsystem, ns] : by_subsystem_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + subsystem + "\": " + std::to_string(ns);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"sites\": {";
  first = true;
  for (const auto& [site, s] : sites_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + site + "\": {\"calls\": " + std::to_string(s.calls) +
           ", \"self_ns\": " + std::to_string(s.self_ns) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace dm::obs
