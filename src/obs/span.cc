#include "obs/span.h"

#include <algorithm>
#include <cstdio>

#include "common/units.h"
#include "obs/flight_recorder.h"
#include "sim/simulator.h"

namespace dm::obs {
namespace {

// Local copy of the export escaping rules (metrics_hub.cc keeps its own in
// file scope as well): RFC 8259 minimal escapes.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Nanoseconds rendered as microseconds with fixed three decimals — the
// trace-event format's ts/dur unit, exact for integer ns inputs.
std::string micros_fixed3(SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

// A trace accumulating more spans than this is a runaway (or a span leak);
// excess spans are counted as dropped rather than growing without bound.
constexpr std::size_t kMaxSpansPerTrace = 512;

}  // namespace

std::string span_trace_label(std::uint64_t trace) {
  const std::uint64_t origin_plus_one = trace >> 32;
  const std::uint64_t seq = trace & 0xffffffffULL;
  if (origin_plus_one == 0) return "-:" + std::to_string(seq);
  return std::to_string(origin_plus_one - 1) + ":" + std::to_string(seq);
}

SpanTracer::SpanTracer(sim::Simulator& sim, Config config)
    : sim_(sim), config_(config) {}

std::uint64_t SpanTracer::begin_span(std::uint64_t trace, std::uint32_t node,
                                     std::string_view subsystem,
                                     std::string_view name) {
  if (trace == 0) {
    ++spans_dropped_;
    return 0;
  }
  TraceRec& rec = traces_[trace];
  if (rec.spans.size() >= kMaxSpansPerTrace) {
    ++spans_dropped_;
    return 0;
  }
  Span span;
  span.id = next_span_++;
  span.trace = trace;
  span.node = node;
  span.subsystem = std::string(subsystem);
  span.name = std::string(name);
  span.begin = sim_.now();
  if (!rec.open_stack.empty()) {
    span.parent = rec.open_stack.back();
    for (auto it = rec.spans.rbegin(); it != rec.spans.rend(); ++it) {
      if (it->id == span.parent) {
        span.depth = it->depth + 1;
        break;
      }
    }
  }
  rec.open_stack.push_back(span.id);
  open_index_[span.id] = trace;
  rec.spans.push_back(std::move(span));
  ++spans_recorded_;
  return rec.spans.back().id;
}

void SpanTracer::end_span(std::uint64_t span) {
  if (span == 0) return;
  const auto idx = open_index_.find(span);
  if (idx == open_index_.end()) return;  // unknown or already closed
  const std::uint64_t trace = idx->second;
  open_index_.erase(idx);
  TraceRec& rec = traces_[trace];
  for (auto it = rec.open_stack.rbegin(); it != rec.open_stack.rend(); ++it) {
    if (*it == span) {
      rec.open_stack.erase(std::next(it).base());
      break;
    }
  }
  for (auto it = rec.spans.rbegin(); it != rec.spans.rend(); ++it) {
    if (it->id != span) continue;
    it->end = sim_.now();
    if (recorder_ != nullptr) recorder_->record_span(*it);
    break;
  }
  if (rec.open_stack.empty() && !rec.completed_listed) {
    rec.completed_listed = true;
    completed_order_.push_back(trace);
    if (completed_order_.size() > config_.max_traces) evict_oldest_completed();
  }
}

void SpanTracer::event(std::uint64_t trace, std::uint32_t node,
                       std::string_view category, std::string_view detail) {
  if (recorder_ != nullptr)
    recorder_->record_event(sim_.now(), trace, node, category, detail);
}

void SpanTracer::evict_oldest_completed() {
  // Oldest completed trace goes first; a trace re-opened after completion
  // (async tail spans) is pushed back instead of dropped mid-flight.
  std::size_t attempts = completed_order_.size();
  while (attempts-- > 0 && !completed_order_.empty()) {
    const std::uint64_t trace = completed_order_.front();
    completed_order_.pop_front();
    const auto it = traces_.find(trace);
    if (it == traces_.end()) continue;  // already drained
    if (!it->second.open_stack.empty()) {
      completed_order_.push_back(trace);
      continue;
    }
    traces_.erase(it);
    ++traces_evicted_;
    return;
  }
}

std::vector<std::uint64_t> SpanTracer::completed_traces() const {
  std::vector<std::uint64_t> out;
  for (const auto& [trace, rec] : traces_)
    if (rec.completed_listed && rec.open_stack.empty()) out.push_back(trace);
  return out;
}

const std::vector<SpanTracer::Span>* SpanTracer::spans(
    std::uint64_t trace) const {
  const auto it = traces_.find(trace);
  return it == traces_.end() ? nullptr : &it->second.spans;
}

SpanTracer::Breakdown SpanTracer::breakdown(std::uint64_t trace) const {
  Breakdown out;
  out.trace = trace;
  const auto it = traces_.find(trace);
  if (it == traces_.end()) return out;

  std::vector<const Span*> closed;
  std::vector<SimTime> bounds;
  for (const Span& span : it->second.spans) {
    if (span.end < span.begin) continue;  // still open
    closed.push_back(&span);
    bounds.push_back(span.begin);
    bounds.push_back(span.end);
    ++out.span_counts[span.subsystem + "." + span.name];
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  // Sweep the elementary intervals: each instant covered by a root span is
  // attributed to the single deepest active span (ties: latest begin, then
  // highest id), so components sum exactly to the root coverage.
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const SimTime t1 = bounds[i];
    const SimTime t2 = bounds[i + 1];
    const Span* best = nullptr;
    bool root_active = false;
    for (const Span* span : closed) {
      if (span->begin > t1 || span->end < t2) continue;
      if (span->depth == 0) root_active = true;
      if (best == nullptr || span->depth > best->depth ||
          (span->depth == best->depth &&
           (span->begin > best->begin ||
            (span->begin == best->begin && span->id > best->id)))) {
        best = span;
      }
    }
    if (!root_active || best == nullptr) continue;
    const SimTime width = t2 - t1;
    out.total += width;
    out.by_subsystem[best->subsystem] += width;
    out.by_site[best->subsystem + "." + best->name] += width;
  }
  return out;
}

std::vector<SpanTracer::Completed> SpanTracer::drain_completed() {
  std::vector<Completed> out;
  std::deque<std::uint64_t> keep;
  for (const std::uint64_t trace : completed_order_) {
    const auto it = traces_.find(trace);
    if (it == traces_.end()) continue;
    if (!it->second.open_stack.empty()) {
      keep.push_back(trace);  // re-opened after completion: not done yet
      continue;
    }
    Completed done;
    done.trace = trace;
    for (const Span& span : it->second.spans) {
      if (span.depth == 0) {
        done.root_name = span.name;
        break;
      }
    }
    done.breakdown = breakdown(trace);
    out.push_back(std::move(done));
    traces_.erase(it);
  }
  completed_order_ = std::move(keep);
  return out;
}

std::string SpanTracer::chrome_trace_json() const {
  std::vector<const Span*> all;
  for (const auto& [trace, rec] : traces_)
    for (const Span& span : rec.spans)
      if (span.end >= span.begin) all.push_back(&span);
  std::sort(all.begin(), all.end(), [](const Span* a, const Span* b) {
    if (a->begin != b->begin) return a->begin < b->begin;
    if (a->trace != b->trace) return a->trace < b->trace;
    return a->id < b->id;
  });

  std::string out = "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
  bool first = true;
  for (const Span* span : all) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(span->name) + "\", \"cat\": \"" +
           json_escape(span->subsystem) + "\", \"ph\": \"X\", \"ts\": " +
           micros_fixed3(span->begin) + ", \"dur\": " +
           micros_fixed3(span->end - span->begin) + ", \"pid\": " +
           std::to_string(span->node) + ", \"tid\": " +
           std::to_string(span->trace & 0xffffffffULL) +
           ", \"args\": {\"trace\": \"" + span_trace_label(span->trace) +
           "\", \"span\": " + std::to_string(span->id) +
           ", \"parent\": " + std::to_string(span->parent) + "}}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void SpanTracer::clear() {
  traces_.clear();
  open_index_.clear();
  completed_order_.clear();
}

}  // namespace dm::obs
