// Flight recorder: bounded per-node rings of recently retired spans and
// point events, dumped as flight_<node>.json on chaos crash, invariant
// failure, or explicit dm_top request.
//
// The recorder is passive storage — the SpanTracer forwards spans as they
// close (set_flight_recorder), fault hooks call dump_* when something goes
// wrong. Dumps are deterministic for a seeded run: ring order is completion
// order, timestamps are virtual, and the JSON uses no wall clock.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/units.h"
#include "obs/span.h"
#include "sim/simulator.h"

namespace dm::obs {

class FlightRecorder {
 public:
  struct Record {
    SimTime begin = 0;
    SimTime end = 0;  // == begin for point events
    std::uint64_t trace = 0;
    std::uint32_t node = 0;
    std::string kind;       // "span" or "event"
    std::string subsystem;  // span subsystem / event category
    std::string name;       // span name / event detail
  };

  struct Config {
    std::size_t capacity_per_node = 256;
  };

  explicit FlightRecorder(sim::Simulator& sim)
      : FlightRecorder(sim, Config()) {}
  FlightRecorder(sim::Simulator& sim, Config config)
      : sim_(sim), config_(config) {}

  void record_span(const SpanTracer::Span& span);
  void record_event(SimTime at, std::uint64_t trace, std::uint32_t node,
                    std::string_view category, std::string_view detail);

  // One node's ring as JSON, oldest record first.
  std::string dump_json(std::uint32_t node, std::string_view reason) const;
  // Writes dump_json(node) to "<dir>/flight_<node>.json".
  Status dump_to_file(std::string_view dir, std::uint32_t node,
                      std::string_view reason) const;
  // Dumps every node with at least one record; returns files written.
  std::size_t dump_all(std::string_view dir, std::string_view reason) const;

  std::size_t record_count(std::uint32_t node) const;
  std::uint64_t dropped(std::uint32_t node) const;
  std::size_t node_count() const noexcept { return rings_.size(); }
  void clear() { rings_.clear(); }

 private:
  struct Ring {
    std::deque<Record> records;
    std::uint64_t dropped = 0;
  };

  void push(std::uint32_t node, Record record);

  sim::Simulator& sim_;
  Config config_;
  std::map<std::uint32_t, Ring> rings_;
};

}  // namespace dm::obs
