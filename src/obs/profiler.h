// Virtual-time profiler: attributes simulated nanoseconds and event-loop
// throughput to (subsystem, method) sites.
//
// Feed it completed traces drained from a SpanTracer: each trace's
// critical-path breakdown is folded into per-subsystem and per-site
// accumulators, and root spans (e.g. "swap.fault") are tallied so callers
// can report ns-per-fault. The event-loop side reads
// Simulator::executed_events() deltas over the profiled window, giving a
// host-independent events-per-virtual-second figure — the before/after
// scoreboard for the raw-speed refactor.
//
// to_json() is deterministic for a seeded run (ordered maps, fixed-point
// doubles, virtual time only) and is what bench_profile_substrate writes
// as BENCH_profile_substrate.json.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/units.h"
#include "obs/span.h"
#include "sim/simulator.h"

namespace dm::obs {

class Profiler {
 public:
  struct Site {
    std::uint64_t calls = 0;  // closed spans at this site
    SimTime self_ns = 0;      // critical-path self time
  };
  struct Root {
    std::uint64_t count = 0;  // completed traces rooted at this span name
    SimTime total_ns = 0;     // sum of root coverage (end-to-end time)
  };

  explicit Profiler(sim::Simulator& sim) : sim_(sim) { begin_window(); }

  // Resets the event/virtual-time baseline (not the attribution tallies).
  void begin_window() {
    window_start_ns_ = sim_.now();
    window_start_events_ = sim_.executed_events();
  }

  void ingest(const SpanTracer::Completed& done);
  // Drains `tracer` and ingests everything it completed. Returns the number
  // of traces consumed.
  std::size_t ingest_all(SpanTracer& tracer);

  std::uint64_t traces() const noexcept { return traces_; }
  SimTime attributed_ns() const noexcept { return attributed_ns_; }
  const std::map<std::string, SimTime>& by_subsystem() const noexcept {
    return by_subsystem_;
  }
  const std::map<std::string, Site>& sites() const noexcept { return sites_; }
  const std::map<std::string, Root>& roots() const noexcept { return roots_; }

  SimTime window_ns() const { return sim_.now() - window_start_ns_; }
  std::uint64_t window_events() const {
    return sim_.executed_events() - window_start_events_;
  }
  double events_per_virtual_second() const;

  // Full profile document: window stats, root tallies, per-subsystem and
  // per-site attribution, plus ns-per-root for each root span name.
  std::string to_json(std::string_view name, std::uint64_t seed) const;

 private:
  sim::Simulator& sim_;
  SimTime window_start_ns_ = 0;
  std::uint64_t window_start_events_ = 0;
  std::uint64_t traces_ = 0;
  SimTime attributed_ns_ = 0;
  std::map<std::string, SimTime> by_subsystem_;
  std::map<std::string, Site> sites_;
  std::map<std::string, Root> roots_;
};

}  // namespace dm::obs
