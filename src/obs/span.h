// Causal span tracer: the concrete sim::SpanSink.
//
// A span is a virtual-time [begin, end) interval on one node attributed to a
// (subsystem, name) site and tied to a net-layer trace id, so one swap fault
// shows up as a tree: swap.fault on the faulting node, rpc.* under it,
// fabric.* under those, and the remote dispatch span on the serving node.
//
// Parenting is inferred from nesting: a span's parent is the innermost span
// of the same trace still open when it begins. That matches the synchronous
// drain-until style of the fault path and degrades gracefully for
// concurrent siblings (replica fan-out), which simply stack.
//
// Critical-path accounting (breakdown()) attributes every instant covered
// by a trace's root spans to exactly one span — the deepest open one, ties
// broken by latest begin then highest id — so the per-subsystem components
// sum exactly to the root span durations in integer nanoseconds. That is
// the property BENCH_profile_substrate.json checks against the measured
// end-to-end swap.fault_ns.
//
// Exports are deterministic: ordered containers, fixed-precision doubles,
// no wall clock. chrome_trace_json() is loadable by Perfetto / chrome://tracing.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "sim/simulator.h"
#include "sim/span_sink.h"

namespace dm::obs {

class FlightRecorder;

class SpanTracer final : public sim::SpanSink {
 public:
  struct Span {
    std::uint64_t id = 0;
    std::uint64_t trace = 0;
    std::uint64_t parent = 0;  // span id, 0 = root
    std::uint32_t node = 0;
    std::uint32_t depth = 0;
    std::string subsystem;
    std::string name;
    SimTime begin = 0;
    SimTime end = -1;  // -1 while open
  };

  // Self-time attribution for one trace; values are integer ns and the
  // by_subsystem values sum exactly to `total`.
  struct Breakdown {
    std::uint64_t trace = 0;
    SimTime total = 0;  // union of the trace's root span intervals
    std::map<std::string, SimTime> by_subsystem;
    std::map<std::string, SimTime> by_site;  // "<subsystem>.<name>"
    std::map<std::string, std::uint64_t> span_counts;  // closed spans per site
  };

  struct Completed {
    std::uint64_t trace = 0;
    std::string root_name;  // name of the trace's first root span
    Breakdown breakdown;
  };

  struct Config {
    std::size_t max_traces = 4096;  // completed traces retained before FIFO drop
  };

  explicit SpanTracer(sim::Simulator& sim) : SpanTracer(sim, Config()) {}
  SpanTracer(sim::Simulator& sim, Config config);

  // sim::SpanSink. begin_span drops untraced (trace == 0) spans.
  std::uint64_t begin_span(std::uint64_t trace, std::uint32_t node,
                           std::string_view subsystem,
                           std::string_view name) override;
  void end_span(std::uint64_t span) override;
  void event(std::uint64_t trace, std::uint32_t node,
             std::string_view category, std::string_view detail) override;

  // Closed spans and events are forwarded to the recorder's per-node rings
  // as they retire (not owned; may be null).
  void set_flight_recorder(FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  // Traces whose every span has closed, ascending trace id.
  std::vector<std::uint64_t> completed_traces() const;
  // Spans of one retained trace in begin order (null if unknown).
  const std::vector<Span>* spans(std::uint64_t trace) const;
  Breakdown breakdown(std::uint64_t trace) const;
  // Removes and returns all fully-closed traces in completion order, with
  // their breakdowns — the profiler's ingestion feed.
  std::vector<Completed> drain_completed();

  // Chrome trace-event JSON ("X" complete events, ts/dur in µs with ns
  // precision, pid = node, tid = trace seq) over every retained closed span.
  std::string chrome_trace_json() const;

  std::uint64_t spans_recorded() const noexcept { return spans_recorded_; }
  std::uint64_t spans_dropped() const noexcept { return spans_dropped_; }
  std::uint64_t traces_evicted() const noexcept { return traces_evicted_; }
  void clear();

 private:
  struct TraceRec {
    std::vector<Span> spans;
    std::vector<std::uint64_t> open_stack;  // open span ids, begin order
    bool completed_listed = false;
  };

  void evict_oldest_completed();

  sim::Simulator& sim_;
  Config config_;
  FlightRecorder* recorder_ = nullptr;
  std::map<std::uint64_t, TraceRec> traces_;
  std::map<std::uint64_t, std::uint64_t> open_index_;  // span id -> trace
  std::deque<std::uint64_t> completed_order_;
  std::uint64_t next_span_ = 1;
  std::uint64_t spans_recorded_ = 0;
  std::uint64_t spans_dropped_ = 0;
  std::uint64_t traces_evicted_ = 0;
};

// "origin:seq" rendering of a net::TraceId (decoded locally: the obs layer
// sits below net in the dependency DAG and cannot include net/rdma.h).
std::string span_trace_label(std::uint64_t trace);

}  // namespace dm::obs
