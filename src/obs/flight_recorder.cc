#include "obs/flight_recorder.h"

#include <cstdio>
#include <fstream>

#include "common/status.h"
#include "common/units.h"
#include "obs/span.h"

namespace dm::obs {
namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void FlightRecorder::push(std::uint32_t node, Record record) {
  Ring& ring = rings_[node];
  if (ring.records.size() >= config_.capacity_per_node) {
    ring.records.pop_front();
    ++ring.dropped;
  }
  ring.records.push_back(std::move(record));
}

void FlightRecorder::record_span(const SpanTracer::Span& span) {
  Record record;
  record.begin = span.begin;
  record.end = span.end;
  record.trace = span.trace;
  record.node = span.node;
  record.kind = "span";
  record.subsystem = span.subsystem;
  record.name = span.name;
  push(span.node, std::move(record));
}

void FlightRecorder::record_event(SimTime at, std::uint64_t trace,
                                  std::uint32_t node,
                                  std::string_view category,
                                  std::string_view detail) {
  Record record;
  record.begin = at;
  record.end = at;
  record.trace = trace;
  record.node = node;
  record.kind = "event";
  record.subsystem = std::string(category);
  record.name = std::string(detail);
  push(node, std::move(record));
}

std::string FlightRecorder::dump_json(std::uint32_t node,
                                      std::string_view reason) const {
  const auto it = rings_.find(node);
  const Ring empty;
  const Ring& ring = it == rings_.end() ? empty : it->second;
  std::string out = "{\n";
  out += "  \"tool\": \"dm_flight\",\n";
  out += "  \"node\": " + std::to_string(node) + ",\n";
  out += "  \"dumped_at_ns\": " + std::to_string(sim_.now()) + ",\n";
  out += "  \"reason\": \"" + json_escape(reason) + "\",\n";
  out += "  \"dropped\": " + std::to_string(ring.dropped) + ",\n";
  out += "  \"records\": [";
  bool first = true;
  for (const Record& record : ring.records) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"kind\": \"" + record.kind + "\", \"trace\": \"" +
           span_trace_label(record.trace) + "\", \"node\": " +
           std::to_string(record.node) + ", \"begin_ns\": " +
           std::to_string(record.begin) + ", \"end_ns\": " +
           std::to_string(record.end) + ", \"subsystem\": \"" +
           json_escape(record.subsystem) + "\", \"name\": \"" +
           json_escape(record.name) + "\"}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

Status FlightRecorder::dump_to_file(std::string_view dir, std::uint32_t node,
                                    std::string_view reason) const {
  std::string path = std::string(dir);
  if (!path.empty() && path.back() != '/') path += '/';
  path += "flight_" + std::to_string(node) + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return UnavailableError("flight recorder: cannot open " + path);
  out << dump_json(node, reason);
  out.close();
  if (!out) return DataLossError("flight recorder: short write to " + path);
  return Status::Ok();
}

std::size_t FlightRecorder::dump_all(std::string_view dir,
                                     std::string_view reason) const {
  std::size_t written = 0;
  for (const auto& [node, ring] : rings_) {
    if (ring.records.empty()) continue;
    if (dump_to_file(dir, node, reason).ok()) ++written;
  }
  return written;
}

std::size_t FlightRecorder::record_count(std::uint32_t node) const {
  const auto it = rings_.find(node);
  return it == rings_.end() ? 0 : it->second.records.size();
}

std::uint64_t FlightRecorder::dropped(std::uint32_t node) const {
  const auto it = rings_.find(node);
  return it == rings_.end() ? 0 : it->second.dropped;
}

}  // namespace dm::obs
