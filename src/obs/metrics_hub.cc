#include "obs/metrics_hub.h"

#include <cstdio>

#include "common/metrics.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace dm::obs {
namespace {

// Metric names are dot-separated identifiers, but escape defensively so a
// hostile label can't break the JSON document.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Fixed-precision double formatting: locale-independent and deterministic
// (snapshot_json must be byte-identical across identical seeded runs).
std::string fixed3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string prom_name(std::string_view name) {
  std::string out = "dm_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

void MetricsHub::add(std::string prefix, const MetricsRegistry* registry) {
  if (registry == nullptr) return;
  sources_[std::move(prefix)].push_back(registry);
}

void MetricsHub::remove(std::string_view prefix) {
  sources_.erase(std::string(prefix));
}

std::size_t MetricsHub::source_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [prefix, registries] : sources_) n += registries.size();
  return n;
}

MetricsRegistry MetricsHub::merged() const {
  MetricsRegistry out;
  for (const auto& [prefix, registries] : sources_) {
    for (const MetricsRegistry* registry : registries) {
      for (const auto& [name, value] : registry->counters())
        out.counter(prefix + "." + name) += value;
      for (const auto& [name, histogram] : registry->histograms())
        out.histogram(prefix + "." + name).merge(histogram);
    }
  }
  return out;
}

std::string MetricsHub::snapshot_json() const {
  const MetricsRegistry snapshot = merged();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(h.count()) + ", \"mean\": " + fixed3(h.mean()) +
           ", \"min\": " + std::to_string(h.min()) +
           ", \"p50\": " + std::to_string(h.p50()) +
           ", \"p99\": " + std::to_string(h.p99()) +
           ", \"max\": " + std::to_string(h.max()) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsHub::prometheus_text() const {
  const MetricsRegistry snapshot = merged();
  std::string out;
  for (const auto& [name, value] : snapshot.counters()) {
    const std::string prom = prom_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms()) {
    const std::string prom = prom_name(name);
    out += "# TYPE " + prom + " summary\n";
    out += prom + "{quantile=\"0.5\"} " + std::to_string(h.p50()) + "\n";
    out += prom + "{quantile=\"0.99\"} " + std::to_string(h.p99()) + "\n";
    out += prom + "_sum " + std::to_string(h.sum()) + "\n";
    out += prom + "_count " + std::to_string(h.count()) + "\n";
  }
  return out;
}

void MetricsHub::start_scrape(sim::Simulator& sim, SimTime period) {
  ++scrape_generation_;
  if (period <= 0) return;
  const std::uint64_t generation = scrape_generation_;
  sim.schedule_after(period, [this, &sim, period, generation]() {
    scrape_tick(sim, period, generation);
  });
}

void MetricsHub::stop_scrape() { ++scrape_generation_; }

void MetricsHub::scrape_tick(sim::Simulator& sim, SimTime period,
                             std::uint64_t generation) {
  if (generation != scrape_generation_) return;  // superseded or stopped
  last_scrape_ = snapshot_json();
  last_scrape_at_ = sim.now();
  ++scrape_count_;
  sim.schedule_after(period, [this, &sim, period, generation]() {
    scrape_tick(sim, period, generation);
  });
}

}  // namespace dm::obs
