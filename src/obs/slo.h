// Declarative SLO engine over MetricsHub windows.
//
// Specs are one-line strings (see DESIGN.md §11 for the grammar):
//
//   "fault_p99: p99 swap.fault_ns.backend < 2ms over 500ms"
//   "degraded: ratio swap.wb.degraded_batches swap.out_batches < 0.05 over 1s"
//
//   spec   := [name ":"] agg metric "<" threshold "over" window
//           | [name ":"] "ratio" counterA counterB "<" fraction "over" window
//   agg    := p50 | p90 | p99 | mean | max | count | rate
//   number := decimal with optional ns/us/ms/s suffix (durations)
//
// Metric names resolve against the hub's *merged* snapshot by dotted-path
// match: "swap.fault_ns.backend" matches "node.3.swap.fault_ns.backend" on
// every node, and matching histograms merge (counters sum) before the
// aggregate is taken — so one spec covers the whole cluster.
//
// Evaluation ticks run in virtual time. Each tick takes a snapshot per
// spec; the evaluated value is the aggregate of the *window delta*
// (Histogram::delta_since / counter subtraction) between now and the newest
// snapshot at least `window` old. Until a full window of history exists the
// spec abstains — no alert can fire before time window has elapsed, which
// keeps alert streams deterministic from t=0.
//
// A violating tick raises an Alert carrying the consecutive-violation
// streak; once the streak reaches Config::burn_threshold the alert is
// flagged `page` — a deterministic stand-in for multi-window burn-rate
// paging. Alerts feed dm_top, tests, and (via set_alert_hook) the flight
// recorder's invariant-failure dump path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/metrics_hub.h"
#include "sim/simulator.h"

namespace dm::obs {

class SloMonitor {
 public:
  struct Alert {
    SimTime at = 0;
    std::string spec;  // spec name
    double value = 0.0;
    double threshold = 0.0;
    std::uint64_t streak = 1;  // consecutive violating evaluations
    bool page = false;         // streak reached the burn threshold
  };

  struct Config {
    SimTime period = 100 * kMilli;    // evaluation tick
    std::uint64_t burn_threshold = 3;  // violating ticks before paging
    std::size_t max_alerts = 4096;    // retained alert history
  };

  SloMonitor(sim::Simulator& sim, const MetricsHub& hub)
      : SloMonitor(sim, hub, Config()) {}
  SloMonitor(sim::Simulator& sim, const MetricsHub& hub, Config config)
      : sim_(sim), hub_(hub), config_(config) {}

  // Parses and registers one spec; InvalidArgument on grammar errors.
  Status add_spec(std::string_view text);
  std::size_t spec_count() const noexcept { return specs_.size(); }

  // Periodic evaluation in virtual time; start replaces any prior schedule.
  void start();
  void stop() { ++generation_; }
  // One evaluation pass at the current virtual time (also used by ticks).
  void evaluate_now();

  const std::vector<Alert>& alerts() const noexcept { return alerts_; }
  // Deterministic one-line-per-alert rendering for dm_top.
  std::string alerts_text() const;
  // slo.evaluations / slo.violations / slo.violations.<name> / slo.pages —
  // registerable with the hub like any subsystem registry.
  MetricsRegistry& metrics() noexcept { return metrics_; }
  void set_alert_hook(std::function<void(const Alert&)> hook) {
    alert_hook_ = std::move(hook);
  }

 private:
  struct Window {
    // Counter pair (ratio/count/rate) or merged histogram, per snapshot.
    SimTime at = 0;
    Histogram hist;
    std::uint64_t counter_a = 0;
    std::uint64_t counter_b = 0;
  };

  struct Spec {
    std::string name;
    std::string agg;       // p50/p90/p99/mean/max/count/rate/ratio
    std::string metric;    // histogram or counter path
    std::string metric_b;  // ratio denominator
    double threshold = 0.0;
    SimTime window = 0;
    std::deque<Window> history;
    std::uint64_t streak = 0;
  };

  void tick(std::uint64_t generation);
  void evaluate_spec(Spec& spec, const MetricsRegistry& merged);

  sim::Simulator& sim_;
  const MetricsHub& hub_;
  Config config_;
  std::vector<Spec> specs_;
  std::vector<Alert> alerts_;
  MetricsRegistry metrics_;
  std::function<void(const Alert&)> alert_hook_;
  std::uint64_t generation_ = 0;
};

}  // namespace dm::obs
