#include "obs/slo.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"

namespace dm::obs {
namespace {

std::string fixed3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// Dotted-path match: `metric` must align on component boundaries of the
// merged name, so "swap.fault_ns" matches "node.3.swap.fault_ns.backend"
// but not "node.3.xswap.fault_nsy".
bool path_matches(const std::string& full, const std::string& metric) {
  if (full == metric) return true;
  if (full.size() > metric.size() + 1 &&
      full.compare(full.size() - metric.size() - 1, metric.size() + 1,
                   "." + metric) == 0) {
    return true;
  }
  if (full.size() > metric.size() + 1 &&
      full.compare(0, metric.size() + 1, metric + ".") == 0) {
    return true;
  }
  return full.find("." + metric + ".") != std::string::npos;
}

// Decimal with optional duration suffix; plain numbers pass through
// unscaled (they are already ns, a fraction, or a count).
bool parse_scaled(const std::string& token, double* out) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str()) return false;
  const std::string_view suffix(end);
  double scale = 0.0;
  if (suffix.empty() || suffix == "ns") {
    scale = 1.0;
  } else if (suffix == "us") {
    scale = 1e3;
  } else if (suffix == "ms") {
    scale = 1e6;
  } else if (suffix == "s") {
    scale = 1e9;
  } else {
    return false;
  }
  *out = v * scale;
  return true;
}

std::vector<std::string> split_words(std::string_view text) {
  std::vector<std::string> out;
  std::string word;
  for (const char c : text) {
    if (c == ' ' || c == '\t') {
      if (!word.empty()) out.push_back(std::move(word));
      word.clear();
    } else {
      word += c;
    }
  }
  if (!word.empty()) out.push_back(std::move(word));
  return out;
}

bool known_agg(const std::string& agg) {
  return agg == "p50" || agg == "p90" || agg == "p99" || agg == "mean" ||
         agg == "max" || agg == "count" || agg == "rate" || agg == "ratio";
}

}  // namespace

Status SloMonitor::add_spec(std::string_view text) {
  std::vector<std::string> words = split_words(text);
  Spec spec;
  if (!words.empty() && words.front().size() > 1 && words.front().back() == ':') {
    spec.name = words.front().substr(0, words.front().size() - 1);
    words.erase(words.begin());
  } else {
    spec.name = "slo" + std::to_string(specs_.size());
  }
  const std::string grammar =
      "slo spec: [name:] agg metric < threshold over window | "
      "[name:] ratio counterA counterB < fraction over window";
  if (words.empty() || !known_agg(words[0]))
    return InvalidArgumentError(grammar + " (bad aggregate in '" +
                                std::string(text) + "')");
  spec.agg = words[0];
  const std::size_t operands = spec.agg == "ratio" ? 2 : 1;
  // agg + operands + "<" + threshold + "over" + window
  if (words.size() != operands + 5)
    return InvalidArgumentError(grammar + " (wrong arity in '" +
                                std::string(text) + "')");
  spec.metric = words[1];
  if (operands == 2) spec.metric_b = words[2];
  if (words[operands + 1] != "<")
    return InvalidArgumentError(grammar + " (only '<' objectives supported)");
  if (!parse_scaled(words[operands + 2], &spec.threshold))
    return InvalidArgumentError(grammar + " (bad threshold '" +
                                words[operands + 2] + "')");
  if (words[operands + 3] != "over")
    return InvalidArgumentError(grammar + " (expected 'over')");
  double window_ns = 0.0;
  if (!parse_scaled(words[operands + 4], &window_ns) || window_ns <= 0.0)
    return InvalidArgumentError(grammar + " (bad window '" +
                                words[operands + 4] + "')");
  spec.window = static_cast<SimTime>(window_ns);
  specs_.push_back(std::move(spec));
  return Status::Ok();
}

void SloMonitor::start() {
  ++generation_;
  const std::uint64_t generation = generation_;
  sim_.schedule_after(config_.period,
                      [this, generation]() { tick(generation); });
}

void SloMonitor::tick(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded or stopped
  evaluate_now();
  sim_.schedule_after(config_.period,
                      [this, generation]() { tick(generation); });
}

void SloMonitor::evaluate_now() {
  if (specs_.empty()) return;
  const MetricsRegistry merged = hub_.merged();
  ++metrics_.counter("slo.evaluations");
  for (Spec& spec : specs_) evaluate_spec(spec, merged);
}

void SloMonitor::evaluate_spec(Spec& spec, const MetricsRegistry& merged) {
  Window snap;
  snap.at = sim_.now();
  const bool counter_spec =
      spec.agg == "ratio" || spec.agg == "count" || spec.agg == "rate";
  if (counter_spec) {
    for (const auto& [name, value] : merged.counters()) {
      if (path_matches(name, spec.metric)) snap.counter_a += value;
      if (!spec.metric_b.empty() && path_matches(name, spec.metric_b))
        snap.counter_b += value;
    }
  } else {
    for (const auto& [name, hist] : merged.histograms())
      if (path_matches(name, spec.metric)) snap.hist.merge(hist);
  }

  // Newest snapshot at least one full window old is the baseline; abstain
  // until one exists so alerting is deterministic from t=0.
  const Window* base = nullptr;
  for (const Window& w : spec.history) {
    if (w.at <= snap.at - spec.window)
      base = &w;
    else
      break;
  }
  bool evaluated = false;
  double value = 0.0;
  if (base != nullptr) {
    if (spec.agg == "ratio") {
      const std::uint64_t da = snap.counter_a - base->counter_a;
      const std::uint64_t db = snap.counter_b - base->counter_b;
      if (db > 0) {
        value = static_cast<double>(da) / static_cast<double>(db);
        evaluated = true;
      }
    } else if (spec.agg == "count") {
      value = static_cast<double>(snap.counter_a - base->counter_a);
      evaluated = true;
    } else if (spec.agg == "rate") {
      const SimTime elapsed = snap.at - base->at;
      if (elapsed > 0) {
        value = static_cast<double>(snap.counter_a - base->counter_a) /
                (static_cast<double>(elapsed) / 1e9);
        evaluated = true;
      }
    } else {
      const Histogram delta = snap.hist.delta_since(base->hist);
      if (delta.count() > 0) {
        if (spec.agg == "p50") value = static_cast<double>(delta.percentile(0.50));
        if (spec.agg == "p90") value = static_cast<double>(delta.percentile(0.90));
        if (spec.agg == "p99") value = static_cast<double>(delta.percentile(0.99));
        if (spec.agg == "mean") value = delta.mean();
        if (spec.agg == "max") value = static_cast<double>(delta.max());
        evaluated = true;
      }
    }
  }

  spec.history.push_back(std::move(snap));
  while (spec.history.size() > 1 &&
         spec.history[1].at <= sim_.now() - spec.window) {
    spec.history.pop_front();
  }

  if (!evaluated) {
    spec.streak = 0;
    return;
  }
  if (value < spec.threshold) {
    spec.streak = 0;
    return;
  }
  ++spec.streak;
  Alert alert;
  alert.at = sim_.now();
  alert.spec = spec.name;
  alert.value = value;
  alert.threshold = spec.threshold;
  alert.streak = spec.streak;
  alert.page = spec.streak >= config_.burn_threshold;
  ++metrics_.counter("slo.violations");
  ++metrics_.counter("slo.violations." + spec.name);
  if (alert.page) ++metrics_.counter("slo.pages");
  if (alerts_.size() < config_.max_alerts) alerts_.push_back(alert);
  if (alert_hook_) alert_hook_(alert);
}

std::string SloMonitor::alerts_text() const {
  std::string out;
  for (const Alert& alert : alerts_) {
    out += "[t=" + std::to_string(alert.at) + "ns] " + alert.spec +
           " value=" + fixed3(alert.value) + " objective<" +
           fixed3(alert.threshold) + " burn=" + std::to_string(alert.streak);
    if (alert.page) out += " PAGE";
    out += "\n";
  }
  return out;
}

}  // namespace dm::obs
