// Cluster-wide metrics aggregation and export.
//
// Every subsystem owns its MetricsRegistry (no global state — see
// common/metrics.h); the MetricsHub is where an operator's view is
// assembled. Registries are registered under hierarchical prefixes
// ("node.3", "net"), and because subsystem metric names already carry
// their subsystem ("swap.fault_ns.backend", "rpc.rtt.heartbeat"), the
// merged names read naturally: "node.3.swap.fault_ns.backend".
//
// Exports are deterministic: all maps are ordered, doubles are printed
// with fixed precision, and no wall-clock time is consulted anywhere —
// two identically seeded runs produce byte-identical snapshot_json().
//
// The periodic scrape runs in *virtual* time on the simulator, modeling a
// monitoring agent: each tick stores the latest snapshot, which dm_top
// and the benches read instead of poking subsystems directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace dm::obs {

class MetricsHub {
 public:
  // Registers `registry` (not owned; must outlive the hub or be removed)
  // under `prefix`. Multiple registries may share one prefix — their
  // counters sum and their histograms merge, so a node's RPC endpoint,
  // service, and pools all fold into "node.<id>.*".
  void add(std::string prefix, const MetricsRegistry* registry);
  // Drops every registry registered under `prefix`.
  void remove(std::string_view prefix);
  std::size_t source_count() const noexcept;

  // Merged cluster snapshot: every counter/histogram re-keyed as
  // "<prefix>.<name>". A point-in-time copy — safe to keep after the
  // sources mutate.
  MetricsRegistry merged() const;

  // Machine-readable exports of the merged snapshot.
  // JSON: {"counters": {name: value...}, "histograms": {name: {count,
  // mean, min, p50, p99, max}...}} with sorted keys.
  std::string snapshot_json() const;
  // Prometheus text exposition: names sanitized to [a-zA-Z0-9_] with a
  // "dm_" namespace; histograms exported as summaries.
  std::string prometheus_text() const;

  // Starts a periodic sim-time scrape storing snapshot_json() every
  // `period`. Restarting replaces the previous schedule; period <= 0
  // stops it.
  void start_scrape(sim::Simulator& sim, SimTime period);
  void stop_scrape();

  // Most recent scrape result (empty before the first tick).
  const std::string& last_scrape() const noexcept { return last_scrape_; }
  std::uint64_t scrape_count() const noexcept { return scrape_count_; }
  SimTime last_scrape_at() const noexcept { return last_scrape_at_; }

 private:
  void scrape_tick(sim::Simulator& sim, SimTime period,
                   std::uint64_t generation);

  std::map<std::string, std::vector<const MetricsRegistry*>> sources_;
  std::string last_scrape_;
  std::uint64_t scrape_count_ = 0;
  SimTime last_scrape_at_ = 0;
  // Bumped on every start/stop; stale scheduled ticks see a mismatch and
  // die instead of double-scraping.
  std::uint64_t scrape_generation_ = 0;
};

}  // namespace dm::obs
