// Node-coordinated shared memory pool (paper §III, §IV.F).
//
// Every virtual server hosted on a node donates a configurable fraction of
// its allocated memory (10% initially; the node manager may proactively grow
// a server's donation to 40% or shrink it to zero). The pool is the sum of
// live donations, carved out of one arena owned by the node, and accessed at
// DRAM speed — this is the paper's key node-level disaggregation argument.
//
// The pool stores *entries* (swapped-out pages, cached partitions) keyed by
// a 64-bit id. Entries carry their stored (possibly compressed) bytes in
// blocks from a slab allocator. Capacity enforcement is logical: used bytes
// never exceed total donated bytes even if the arena is larger.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/lru.h"
#include "common/metrics.h"
#include "common/status.h"
#include "mem/slab_allocator.h"

namespace dm::mem {

using EntryId = std::uint64_t;
using ServerId = std::uint32_t;

class SharedMemoryPool {
 public:
  struct Config {
    std::uint64_t arena_bytes = 64 * 1024 * 1024;
    SlabAllocator::Config slab{};
  };

  SharedMemoryPool();
  explicit SharedMemoryPool(Config config);

  // --- donation ledger ------------------------------------------------------
  // Sets the server's donation to `bytes` (absolute). Shrinking below the
  // server's currently stored bytes fails with kFailedPrecondition until
  // entries are evicted.
  Status set_donation(ServerId server, std::uint64_t bytes);
  std::uint64_t donation_of(ServerId server) const;
  std::uint64_t total_donated() const noexcept { return total_donated_; }
  std::uint64_t used_bytes() const noexcept { return allocator_.used_bytes(); }
  std::uint64_t free_bytes() const noexcept {
    const std::uint64_t cap =
        std::min(total_donated_, allocator_.capacity_bytes());
    return cap > used_bytes() ? cap - used_bytes() : 0;
  }

  // --- entry store ----------------------------------------------------------
  // Stores `data` under (owner, id). Fails with kResourceExhausted when the
  // donated capacity or the arena is full — the caller then goes remote.
  Status put(ServerId owner, EntryId id, std::span<const std::byte> data);
  // Copies the stored bytes into `out` (sized by stored_size()).
  Status get(ServerId owner, EntryId id, std::span<std::byte> out) const;
  // Copies `out.size()` stored bytes starting at `offset` (sub-entry read,
  // used by the swap layer's non-PBS path to pull one page from a batch).
  Status get_range(ServerId owner, EntryId id, std::uint64_t offset,
                   std::span<std::byte> out) const;
  // Like get(), but does NOT refresh recency — for maintenance reads
  // (spill/migration) that must not promote the entry they are evicting.
  Status peek(ServerId owner, EntryId id, std::span<std::byte> out) const;
  StatusOr<std::size_t> stored_size(ServerId owner, EntryId id) const;
  bool contains(ServerId owner, EntryId id) const;
  Status remove(ServerId owner, EntryId id);

  // Least-recently-used entry across the pool (victim for spill-to-remote).
  std::optional<std::pair<ServerId, EntryId>> lru_entry() const;
  // Removes the LRU entry and returns its bytes (for migration down-tier).
  StatusOr<std::vector<std::byte>> evict_lru(ServerId* owner_out,
                                             EntryId* id_out);

  std::size_t entry_count() const noexcept { return entries_.size(); }
  MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  struct Entry {
    std::uint64_t offset;
    std::uint32_t size;  // stored bytes (<= block size class)
    ServerId owner;
    // Full 64-bit entry id. The packed Key truncates ids to 48 bits, so
    // (owner, id) must be recovered from here — never decoded from the Key
    // — or hash-derived ids (the KV store's) come back mangled and the
    // spill path deletes entries the owner's map still points at.
    EntryId id = 0;
  };
  using Key = std::uint64_t;  // (owner << 48) | low 48 id bits
  static Key make_key(ServerId owner, EntryId id) noexcept {
    return (static_cast<Key>(owner) << 48) | (id & 0xffffffffffffULL);
  }

  std::vector<std::byte> arena_;
  SlabAllocator allocator_;
  Config config_;
  std::unordered_map<ServerId, std::uint64_t> donations_;
  std::uint64_t total_donated_ = 0;
  std::unordered_map<ServerId, std::uint64_t> stored_per_server_;
  std::unordered_map<Key, Entry> entries_;
  // get() refreshes recency and counters on a logically-const read path.
  mutable LruTracker<Key> lru_;
  mutable MetricsRegistry metrics_;
};

}  // namespace dm::mem
