// Size-class slab allocator over a caller-provided arena.
//
// The disaggregated memory pools hand out blocks in the compression bucket
// sizes (512 B .. 4 KiB) plus whole-page blocks. A classic slab design keeps
// allocation O(1) and fragmentation bounded: the arena is carved into
// fixed-size slabs; each slab binds to one size class while it has live
// blocks and returns to the free-slab list when it empties.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace dm::mem {

class SlabAllocator {
 public:
  struct Config {
    // Compression buckets plus power-of-two batch sizes up to one slab.
    std::vector<std::size_t> size_classes{512,  1024,  2048,  4096,
                                          8192, 16384, 32768, 65536};
    std::size_t slab_bytes = 64 * 1024;
  };

  // `arena` must outlive the allocator. Its size is rounded down to a whole
  // number of slabs.
  explicit SlabAllocator(std::span<std::byte> arena);
  SlabAllocator(std::span<std::byte> arena, Config config);

  // Allocates a block of the smallest size class >= `size`.
  // Returns the arena offset of the block.
  StatusOr<std::uint64_t> allocate(std::size_t size);

  // Frees a block previously returned by allocate().
  Status free(std::uint64_t offset);

  // The usable bytes of the block at `offset` (its size class).
  StatusOr<std::size_t> block_size(std::uint64_t offset) const;

  std::span<std::byte> block_span(std::uint64_t offset, std::size_t size) {
    return arena_.subspan(offset, size);
  }

  std::uint64_t used_bytes() const noexcept { return used_bytes_; }
  std::uint64_t capacity_bytes() const noexcept {
    return static_cast<std::uint64_t>(slab_count_) * config_.slab_bytes;
  }
  std::size_t live_blocks() const noexcept { return live_blocks_; }
  // Bytes held by partially-used slabs beyond their live blocks (internal
  // fragmentation at slab granularity).
  std::uint64_t slack_bytes() const noexcept;

 private:
  struct Slab {
    int size_class = -1;  // -1: unbound (free slab)
    std::uint32_t live = 0;
    std::vector<std::uint32_t> free_blocks;  // block indices within the slab
  };

  std::size_t class_for(std::size_t size) const;
  std::size_t slab_of(std::uint64_t offset) const {
    return offset / config_.slab_bytes;
  }

  std::span<std::byte> arena_;
  Config config_;
  std::size_t slab_count_;
  std::vector<Slab> slabs_;
  std::vector<std::size_t> free_slabs_;
  // Per size class: slabs with at least one free block.
  std::vector<std::vector<std::size_t>> partial_slabs_;
  std::unordered_set<std::uint64_t> live_offsets_;
  std::uint64_t used_bytes_ = 0;
  std::size_t live_blocks_ = 0;
};

}  // namespace dm::mem
