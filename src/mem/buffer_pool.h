// RDMA buffer pools (paper §IV.B, §IV.F).
//
// Each node maintains two cluster-level pools carved from memory it reserved
// for RDMA at bring-up:
//
//  * RegisteredBufferPool — the *receive* pool: slabs of donated DRAM,
//    individually registered with the fabric so remote peers can one-sided
//    WRITE/READ blocks inside them. Registration is per-slab because the
//    eviction handler deregisters whole slabs preemptively when local
//    pressure rises (§IV.F policy 1); the owner then migrates the evicted
//    blocks' entries elsewhere.
//
//  * SendStagingPool — the *send* pool: a bump arena where outgoing entries
//    are staged and coalesced by the window-based batcher before a single
//    RDMA write covers the whole batch (§IV.H).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/fabric.h"

namespace dm::mem {

using SlabId = std::uint32_t;

// A block inside a registered slab, addressable by remote peers.
struct BlockRef {
  SlabId slab = 0;
  net::RKey rkey = net::kInvalidRKey;
  std::uint64_t offset = 0;  // offset within the slab's registered region
  std::uint32_t size = 0;    // size class of the block
};

class RegisteredBufferPool {
 public:
  struct Config {
    std::uint64_t arena_bytes = 64 * 1024 * 1024;
    std::uint64_t slab_bytes = 256 * 1024;
    std::vector<std::uint32_t> size_classes{512,  1024,  2048,  4096,
                                            8192, 16384, 32768, 65536};
  };

  RegisteredBufferPool(net::Fabric& fabric, net::NodeId owner);
  RegisteredBufferPool(net::Fabric& fabric, net::NodeId owner, Config config);
  ~RegisteredBufferPool();

  RegisteredBufferPool(const RegisteredBufferPool&) = delete;
  RegisteredBufferPool& operator=(const RegisteredBufferPool&) = delete;

  net::NodeId owner() const noexcept { return owner_; }

  // Allocates a block >= size, registering a fresh slab if needed.
  StatusOr<BlockRef> allocate(std::uint32_t size);
  Status free(const BlockRef& ref);

  // Local view of a block's bytes (the owner reads/writes directly).
  std::span<std::byte> block_bytes(const BlockRef& ref);

  // Blocks currently live in a slab (eviction planning).
  std::vector<BlockRef> blocks_in_slab(SlabId slab) const;
  std::size_t active_slabs() const noexcept;
  // Deregisters a slab from the fabric. Fails while blocks are live.
  Status deregister_slab(SlabId slab);
  // Slab with the fewest live blocks (cheapest to drain), if any active.
  std::optional<SlabId> least_loaded_slab() const;

  std::uint64_t used_bytes() const noexcept { return used_bytes_; }
  std::uint64_t registered_bytes() const noexcept { return registered_bytes_; }
  std::uint64_t capacity_bytes() const noexcept { return arena_.size(); }
  MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  struct Slab {
    int size_class = -1;            // -1 = unbound
    net::RKey rkey = net::kInvalidRKey;
    std::uint32_t live = 0;
    std::vector<std::uint32_t> free_blocks;
  };

  std::size_t class_for(std::uint32_t size) const;

  net::Fabric& fabric_;
  net::NodeId owner_;
  Config config_;
  std::vector<std::byte> arena_;
  std::vector<Slab> slabs_;
  std::vector<SlabId> free_slabs_;
  std::vector<std::vector<SlabId>> partials_;  // per size class
  std::uint64_t used_bytes_ = 0;
  std::uint64_t registered_bytes_ = 0;
  MetricsRegistry metrics_;
};

// Bump arena for batched sends; reset after each flush.
class SendStagingPool {
 public:
  explicit SendStagingPool(std::uint64_t bytes) : arena_(bytes) {}

  StatusOr<std::span<std::byte>> stage(std::size_t size) {
    if (cursor_ + size > arena_.size())
      return ResourceExhaustedError("send staging pool full");
    auto out = std::span(arena_).subspan(cursor_, size);
    cursor_ += size;
    return out;
  }

  std::span<const std::byte> staged() const {
    return std::span(arena_).first(cursor_);
  }
  std::uint64_t staged_bytes() const noexcept { return cursor_; }
  std::uint64_t capacity() const noexcept { return arena_.size(); }
  void reset() noexcept { cursor_ = 0; }

 private:
  std::vector<std::byte> arena_;
  std::uint64_t cursor_ = 0;
};

}  // namespace dm::mem
