#include "mem/memory_map.h"

#include <algorithm>

#include "common/status.h"

namespace dm::mem {

MemoryMap::MemoryMap(std::size_t shard_count)
    : shards_(shard_count == 0 ? 1 : shard_count) {}

void MemoryMap::commit(EntryId id, EntryLocation location) {
  auto& shard = shards_[shard_of(id)];
  auto [it, inserted] = shard.insert_or_assign(id, std::move(location));
  if (inserted) ++size_;
}

StatusOr<EntryLocation> MemoryMap::lookup(EntryId id) const {
  const auto& shard = shards_[shard_of(id)];
  auto it = shard.find(id);
  if (it == shard.end()) return NotFoundError("entry not mapped");
  return it->second;
}

bool MemoryMap::contains(EntryId id) const {
  const auto& shard = shards_[shard_of(id)];
  return shard.count(id) > 0;
}

Status MemoryMap::remove(EntryId id) {
  auto& shard = shards_[shard_of(id)];
  if (shard.erase(id) == 0) return NotFoundError("entry not mapped");
  --size_;
  return Status::Ok();
}

void MemoryMap::for_each(
    const std::function<void(EntryId, const EntryLocation&)>& fn) const {
  for (const auto& shard : shards_)
    for (const auto& [id, loc] : shard) fn(id, loc);
}

std::vector<EntryId> MemoryMap::entries_with_replica_on(
    net::NodeId node) const {
  std::vector<EntryId> out;
  for (const auto& shard : shards_) {
    for (const auto& [id, loc] : shard) {
      if (loc.tier != Tier::kRemote) continue;
      for (const auto& replica : loc.replicas) {
        if (replica.node == node) {
          out.push_back(id);
          break;
        }
      }
    }
  }
  return out;
}

std::vector<EntryId> MemoryMap::repair_candidates(
    std::size_t replication) const {
  std::vector<EntryId> out;
  for (const auto& shard : shards_) {
    for (const auto& [id, loc] : shard) {
      // Erasure-coded entries carry their own target ("min surviving
      // shards" generalizes min_replicas): all k+r shards placed. Plain
      // replication keeps the caller-supplied factor.
      const std::size_t target =
          loc.ec_k > 0
              ? static_cast<std::size_t>(loc.ec_k) + loc.ec_r
              : replication;
      const bool under_replicated =
          loc.tier == Tier::kRemote && loc.replicas.size() < target;
      if (under_replicated || loc.degraded) out.push_back(id);
    }
  }
  // Sorted so the repair order is independent of hash-table iteration.
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t MemoryMap::approx_bytes() const noexcept {
  std::uint64_t bytes = 0;
  for (const auto& shard : shards_) {
    bytes += shard.bucket_count() * sizeof(void*);
    bytes += shard.size() *
             (sizeof(EntryId) + sizeof(EntryLocation) + 2 * sizeof(void*));
    for (const auto& [id, loc] : shard) {
      bytes += loc.replicas.capacity() * sizeof(RemoteReplica);
      bytes += loc.shard_checksums.capacity() * sizeof(std::uint64_t);
    }
  }
  return bytes;
}

}  // namespace dm::mem
