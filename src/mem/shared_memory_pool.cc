#include "mem/shared_memory_pool.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"

namespace dm::mem {

SharedMemoryPool::SharedMemoryPool() : SharedMemoryPool(Config{}) {}

SharedMemoryPool::SharedMemoryPool(Config config)
    : arena_(config.arena_bytes),
      allocator_(arena_, config.slab),
      config_(std::move(config)) {}

Status SharedMemoryPool::set_donation(ServerId server, std::uint64_t bytes) {
  const std::uint64_t stored = stored_per_server_.count(server)
                                   ? stored_per_server_.at(server)
                                   : 0;
  if (bytes < stored)
    return FailedPreconditionError(
        "cannot shrink donation below server's stored bytes");
  auto [it, inserted] = donations_.try_emplace(server, 0);
  total_donated_ -= it->second;
  it->second = bytes;
  total_donated_ += bytes;
  return Status::Ok();
}

std::uint64_t SharedMemoryPool::donation_of(ServerId server) const {
  auto it = donations_.find(server);
  return it == donations_.end() ? 0 : it->second;
}

Status SharedMemoryPool::put(ServerId owner, EntryId id,
                             std::span<const std::byte> data) {
  const Key key = make_key(owner, id);
  if (entries_.count(key) > 0)
    return AlreadyExistsError("entry already in shared pool");
  // Logical capacity: the pool may only hold what servers donated.
  // Charge at size-class granularity (what the allocator will consume).
  if (used_bytes() + data.size() > total_donated_) {
    ++metrics_.counter("shm.put_rejected_capacity");
    return ResourceExhaustedError("donated capacity exhausted");
  }
  auto offset = allocator_.allocate(data.size());
  if (!offset.ok()) {
    ++metrics_.counter("shm.put_rejected_arena");
    return offset.status();
  }
  std::memcpy(arena_.data() + *offset, data.data(), data.size());
  entries_.emplace(key, Entry{*offset, static_cast<std::uint32_t>(data.size()),
                              owner, id});
  stored_per_server_[owner] += data.size();
  lru_.touch(key);
  ++metrics_.counter("shm.puts");
  metrics_.counter("shm.bytes_in") += data.size();
  return Status::Ok();
}

Status SharedMemoryPool::get(ServerId owner, EntryId id,
                             std::span<std::byte> out) const {
  const Key key = make_key(owner, id);
  auto it = entries_.find(key);
  if (it == entries_.end()) return NotFoundError("entry not in shared pool");
  if (out.size() < it->second.size)
    return InvalidArgumentError("output buffer too small");
  std::memcpy(out.data(), arena_.data() + it->second.offset, it->second.size);
  lru_.touch(key);
  ++metrics_.counter("shm.gets");
  return Status::Ok();
}

Status SharedMemoryPool::peek(ServerId owner, EntryId id,
                              std::span<std::byte> out) const {
  auto it = entries_.find(make_key(owner, id));
  if (it == entries_.end()) return NotFoundError("entry not in shared pool");
  if (out.size() < it->second.size)
    return InvalidArgumentError("output buffer too small");
  std::memcpy(out.data(), arena_.data() + it->second.offset, it->second.size);
  return Status::Ok();
}

Status SharedMemoryPool::get_range(ServerId owner, EntryId id,
                                   std::uint64_t offset,
                                   std::span<std::byte> out) const {
  const Key key = make_key(owner, id);
  auto it = entries_.find(key);
  if (it == entries_.end()) return NotFoundError("entry not in shared pool");
  if (offset + out.size() > it->second.size)
    return InvalidArgumentError("range past end of entry");
  std::memcpy(out.data(), arena_.data() + it->second.offset + offset,
              out.size());
  lru_.touch(key);
  ++metrics_.counter("shm.gets");
  return Status::Ok();
}

StatusOr<std::size_t> SharedMemoryPool::stored_size(ServerId owner,
                                                    EntryId id) const {
  auto it = entries_.find(make_key(owner, id));
  if (it == entries_.end()) return NotFoundError("entry not in shared pool");
  return static_cast<std::size_t>(it->second.size);
}

bool SharedMemoryPool::contains(ServerId owner, EntryId id) const {
  return entries_.count(make_key(owner, id)) > 0;
}

Status SharedMemoryPool::remove(ServerId owner, EntryId id) {
  const Key key = make_key(owner, id);
  auto it = entries_.find(key);
  if (it == entries_.end()) return NotFoundError("entry not in shared pool");
  stored_per_server_[it->second.owner] -= it->second.size;
  DM_RETURN_IF_ERROR(allocator_.free(it->second.offset));
  entries_.erase(it);
  lru_.erase(key);
  ++metrics_.counter("shm.removes");
  return Status::Ok();
}

std::optional<std::pair<ServerId, EntryId>> SharedMemoryPool::lru_entry()
    const {
  auto key = lru_.peek_lru();
  if (!key) return std::nullopt;
  // Recover (owner, id) from the entry record, not the packed key: the key
  // only keeps the low 48 id bits, and callers feed the result back into
  // owner-map lookups that need the exact id.
  auto it = entries_.find(*key);
  if (it == entries_.end()) return std::nullopt;
  return std::pair{it->second.owner, it->second.id};
}

StatusOr<std::vector<std::byte>> SharedMemoryPool::evict_lru(
    ServerId* owner_out, EntryId* id_out) {
  auto victim = lru_entry();
  if (!victim) return ResourceExhaustedError("pool empty, nothing to evict");
  const auto [owner, id] = *victim;
  auto it = entries_.find(make_key(owner, id));
  std::vector<std::byte> bytes(it->second.size);
  std::memcpy(bytes.data(), arena_.data() + it->second.offset,
              it->second.size);
  DM_RETURN_IF_ERROR(remove(owner, id));
  if (owner_out != nullptr) *owner_out = owner;
  if (id_out != nullptr) *id_out = id;
  ++metrics_.counter("shm.evictions");
  return bytes;
}

}  // namespace dm::mem
