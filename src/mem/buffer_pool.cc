#include "mem/buffer_pool.h"

#include <algorithm>
#include <cassert>

#include "common/status.h"
#include "net/fabric.h"

namespace dm::mem {

RegisteredBufferPool::RegisteredBufferPool(net::Fabric& fabric,
                                           net::NodeId owner)
    : RegisteredBufferPool(fabric, owner, Config{}) {}

RegisteredBufferPool::RegisteredBufferPool(net::Fabric& fabric,
                                           net::NodeId owner, Config config)
    : fabric_(fabric), owner_(owner), config_(std::move(config)),
      arena_(config_.arena_bytes) {
  std::sort(config_.size_classes.begin(), config_.size_classes.end());
  assert(!config_.size_classes.empty());
  assert(config_.size_classes.back() <= config_.slab_bytes);
  const auto slab_count =
      static_cast<SlabId>(arena_.size() / config_.slab_bytes);
  slabs_.resize(slab_count);
  for (SlabId i = slab_count; i-- > 0;) free_slabs_.push_back(i);
  partials_.resize(config_.size_classes.size());
}

RegisteredBufferPool::~RegisteredBufferPool() {
  for (SlabId i = 0; i < slabs_.size(); ++i) {
    if (slabs_[i].rkey != net::kInvalidRKey)
      (void)fabric_.deregister_memory(owner_, slabs_[i].rkey);
  }
}

std::size_t RegisteredBufferPool::class_for(std::uint32_t size) const {
  for (std::size_t i = 0; i < config_.size_classes.size(); ++i)
    if (size <= config_.size_classes[i]) return i;
  return config_.size_classes.size();
}

StatusOr<BlockRef> RegisteredBufferPool::allocate(std::uint32_t size) {
  const std::size_t cls = class_for(size);
  if (cls >= config_.size_classes.size())
    return InvalidArgumentError("block larger than largest size class");
  const std::uint32_t block_bytes = config_.size_classes[cls];

  auto& partials = partials_[cls];
  SlabId slab_id;
  if (!partials.empty()) {
    slab_id = partials.back();
  } else {
    if (free_slabs_.empty())
      return ResourceExhaustedError("receive buffer pool out of slabs");
    slab_id = free_slabs_.back();
    Slab& slab = slabs_[slab_id];
    // Register the slab with the fabric before first use.
    auto region = std::span(arena_).subspan(
        static_cast<std::uint64_t>(slab_id) * config_.slab_bytes,
        config_.slab_bytes);
    auto rkey = fabric_.register_memory(owner_, region);
    if (!rkey.ok()) return rkey.status();
    free_slabs_.pop_back();
    slab.rkey = *rkey;
    slab.size_class = static_cast<int>(cls);
    slab.live = 0;
    const auto blocks = static_cast<std::uint32_t>(
        config_.slab_bytes / block_bytes);
    slab.free_blocks.clear();
    for (std::uint32_t b = blocks; b-- > 0;) slab.free_blocks.push_back(b);
    partials.push_back(slab_id);
    registered_bytes_ += config_.slab_bytes;
    ++metrics_.counter("rbuf.slabs_registered");
  }

  Slab& slab = slabs_[slab_id];
  const std::uint32_t block = slab.free_blocks.back();
  slab.free_blocks.pop_back();
  ++slab.live;
  if (slab.free_blocks.empty())
    partials.erase(std::find(partials.begin(), partials.end(), slab_id));
  used_bytes_ += block_bytes;
  ++metrics_.counter("rbuf.allocs");
  return BlockRef{slab_id, slab.rkey,
                  static_cast<std::uint64_t>(block) * block_bytes,
                  block_bytes};
}

Status RegisteredBufferPool::free(const BlockRef& ref) {
  if (ref.slab >= slabs_.size()) return InvalidArgumentError("bad slab id");
  Slab& slab = slabs_[ref.slab];
  if (slab.size_class < 0 || slab.rkey != ref.rkey)
    return InvalidArgumentError("block's slab is not active");
  const std::uint32_t block_bytes =
      config_.size_classes[static_cast<std::size_t>(slab.size_class)];
  const auto block = static_cast<std::uint32_t>(ref.offset / block_bytes);
  // Defensive: reject double-free.
  if (std::find(slab.free_blocks.begin(), slab.free_blocks.end(), block) !=
      slab.free_blocks.end())
    return InvalidArgumentError("double free of block");
  const bool was_full = slab.free_blocks.empty();
  slab.free_blocks.push_back(block);
  --slab.live;
  used_bytes_ -= block_bytes;
  auto& partials = partials_[static_cast<std::size_t>(slab.size_class)];
  if (was_full) partials.push_back(ref.slab);
  ++metrics_.counter("rbuf.frees");
  return Status::Ok();
}

std::span<std::byte> RegisteredBufferPool::block_bytes(const BlockRef& ref) {
  const std::uint64_t base =
      static_cast<std::uint64_t>(ref.slab) * config_.slab_bytes;
  return std::span(arena_).subspan(base + ref.offset, ref.size);
}

std::vector<BlockRef> RegisteredBufferPool::blocks_in_slab(SlabId id) const {
  std::vector<BlockRef> out;
  if (id >= slabs_.size()) return out;
  const Slab& slab = slabs_[id];
  if (slab.size_class < 0) return out;
  const std::uint32_t block_bytes =
      config_.size_classes[static_cast<std::size_t>(slab.size_class)];
  const auto blocks =
      static_cast<std::uint32_t>(config_.slab_bytes / block_bytes);
  std::unordered_set<std::uint32_t> free_set(slab.free_blocks.begin(),
                                             slab.free_blocks.end());
  for (std::uint32_t b = 0; b < blocks; ++b) {
    if (free_set.count(b) > 0) continue;
    out.push_back(BlockRef{id, slab.rkey,
                           static_cast<std::uint64_t>(b) * block_bytes,
                           block_bytes});
  }
  return out;
}

std::size_t RegisteredBufferPool::active_slabs() const noexcept {
  std::size_t n = 0;
  for (const Slab& slab : slabs_)
    if (slab.size_class >= 0) ++n;
  return n;
}

Status RegisteredBufferPool::deregister_slab(SlabId id) {
  if (id >= slabs_.size()) return InvalidArgumentError("bad slab id");
  Slab& slab = slabs_[id];
  if (slab.size_class < 0)
    return FailedPreconditionError("slab not active");
  if (slab.live > 0)
    return FailedPreconditionError("slab has live blocks; drain first");
  DM_RETURN_IF_ERROR(fabric_.deregister_memory(owner_, slab.rkey));
  auto& partials = partials_[static_cast<std::size_t>(slab.size_class)];
  if (auto it = std::find(partials.begin(), partials.end(), id);
      it != partials.end())
    partials.erase(it);
  slab.size_class = -1;
  slab.rkey = net::kInvalidRKey;
  slab.free_blocks.clear();
  free_slabs_.push_back(id);
  registered_bytes_ -= config_.slab_bytes;
  ++metrics_.counter("rbuf.slabs_deregistered");
  return Status::Ok();
}

std::optional<SlabId> RegisteredBufferPool::least_loaded_slab() const {
  std::optional<SlabId> best;
  std::uint32_t best_live = ~0u;
  for (SlabId i = 0; i < slabs_.size(); ++i) {
    const Slab& slab = slabs_[i];
    if (slab.size_class < 0) continue;
    if (slab.live < best_live) {
      best_live = slab.live;
      best = i;
    }
  }
  return best;
}

}  // namespace dm::mem
