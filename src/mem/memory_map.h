// Disaggregated memory map (paper §IV.C, §IV.G).
//
// Each virtual server tracks where every one of its data entries lives: the
// node-coordinated shared memory, remote memory on up to three replica
// nodes, or external storage. The map is the commit point of the system —
// a remote write "happens" when its entry is committed here (all-or-nothing,
// §IV.D), so an interrupted replication leaves the previous committed
// location intact.
//
// The map is sharded by entry id to address the paper's scalability concern
// (§IV.C: a flat single hash table per server does not scale to TB-range
// disaggregated memory), and exposes approx_bytes() so tests can check the
// paper's arithmetic (≈8 B of location metadata per 4 KiB entry ⇒ ~5 GB of
// map for 2 TB of remote memory).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "mem/buffer_pool.h"
#include "net/rdma.h"

namespace dm::mem {

using EntryId = std::uint64_t;

enum class Tier : std::uint8_t {
  kSharedMemory = 0,  // node-coordinated shared pool on the home node
  kRemote = 1,        // replicated across remote nodes' receive pools
  kDisk = 2,          // external storage (swap device)
  kNvm = 3,           // local non-volatile memory tier (§VI), when present
};

// Short tier label used in metric names ("ldms.get_ns.<tier>") and dumps.
inline const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kSharedMemory: return "shm";
    case Tier::kRemote: return "remote";
    case Tier::kDisk: return "disk";
    case Tier::kNvm: return "nvm";
  }
  return "?";
}

struct RemoteReplica {
  net::NodeId node = net::kInvalidNode;
  net::RKey rkey = net::kInvalidRKey;
  std::uint64_t offset = 0;     // offset within the registered slab
  std::uint32_t slab = 0;       // host-side slab id (needed to free)
  std::uint32_t block_size = 0; // size class of the hosting block
  // Erasure-coded entries: which of the k+r shards this block holds.
  // Whole-copy replication leaves it 0 (every replica is shard 0, the
  // full payload).
  std::uint32_t shard = 0;

  friend bool operator==(const RemoteReplica&, const RemoteReplica&) = default;
};

struct EntryLocation {
  Tier tier = Tier::kSharedMemory;
  std::uint32_t logical_size = 0;  // original entry bytes (e.g. 4096)
  std::uint32_t stored_size = 0;   // bytes as stored (post-compression)
  bool compressed = false;
  bool raw_fallback = false;       // compressed=true but stored raw
  std::uint64_t checksum = 0;      // fnv1a of the logical bytes
  std::uint64_t disk_offset = 0;   // device offset (tier kDisk or kNvm)
  // Degraded mode (§IV.D hardening): the entry is durable but below its
  // intended placement — written with fewer replicas than the replication
  // factor, or pushed to a device tier because remote memory was
  // unreachable. The background repair service revisits degraded entries
  // and clears the flag once the intended placement is restored.
  bool degraded = false;
  // Erasure coding (Hydra-style): when ec_k > 0 the entry is stored as
  // ec_k data + ec_r parity shards, one per replica slot, and `replicas`
  // holds the surviving shard set (identified by RemoteReplica::shard)
  // rather than whole copies. Missing shards are simply absent; the entry
  // stays readable while >= ec_k shards survive.
  std::uint8_t ec_k = 0;
  std::uint8_t ec_r = 0;
  // fnv1a per stored shard (index-aligned with shard ids, size ec_k+ec_r)
  // so degraded reads can reject corrupted shards before decoding.
  std::vector<std::uint64_t> shard_checksums;
  std::vector<RemoteReplica> replicas;  // valid when tier == kRemote
};

class MemoryMap {
 public:
  explicit MemoryMap(std::size_t shard_count = 16);

  // Atomically installs (or replaces) the committed location of an entry.
  void commit(EntryId id, EntryLocation location);

  StatusOr<EntryLocation> lookup(EntryId id) const;
  bool contains(EntryId id) const;
  Status remove(EntryId id);

  std::size_t size() const noexcept { return size_; }

  // Visits every committed entry (order unspecified but deterministic for a
  // given insertion history).
  void for_each(
      const std::function<void(EntryId, const EntryLocation&)>& fn) const;

  // Entries with a replica on `node` — the failure/eviction repair set.
  std::vector<EntryId> entries_with_replica_on(net::NodeId node) const;

  // Entries the repair service should revisit: remote entries below
  // `replication` replicas, plus anything explicitly marked degraded
  // (e.g. disk-fallback writes awaiting re-promotion).
  std::vector<EntryId> repair_candidates(std::size_t replication) const;

  // Estimated resident metadata bytes (the §IV.C scalability arithmetic).
  std::uint64_t approx_bytes() const noexcept;

 private:
  std::size_t shard_of(EntryId id) const noexcept {
    // Multiplicative hash so sequential page numbers spread across shards.
    return static_cast<std::size_t>((id * 0x9e3779b97f4a7c15ULL) >> 32) %
           shards_.size();
  }

  std::vector<std::unordered_map<EntryId, EntryLocation>> shards_;
  std::size_t size_ = 0;
};

}  // namespace dm::mem
