#include "mem/slab_allocator.h"

#include <algorithm>
#include <cassert>

#include "common/status.h"

namespace dm::mem {

SlabAllocator::SlabAllocator(std::span<std::byte> arena)
    : SlabAllocator(arena, Config{}) {}

SlabAllocator::SlabAllocator(std::span<std::byte> arena, Config config)
    : arena_(arena), config_(std::move(config)) {
  assert(!config_.size_classes.empty());
  std::sort(config_.size_classes.begin(), config_.size_classes.end());
  assert(config_.size_classes.back() <= config_.slab_bytes);
  slab_count_ = arena_.size() / config_.slab_bytes;
  slabs_.resize(slab_count_);
  free_slabs_.reserve(slab_count_);
  // LIFO free list: reuse warm slabs first.
  for (std::size_t i = slab_count_; i-- > 0;) free_slabs_.push_back(i);
  partial_slabs_.resize(config_.size_classes.size());
}

std::size_t SlabAllocator::class_for(std::size_t size) const {
  for (std::size_t i = 0; i < config_.size_classes.size(); ++i) {
    if (size <= config_.size_classes[i]) return i;
  }
  return config_.size_classes.size();  // too large
}

StatusOr<std::uint64_t> SlabAllocator::allocate(std::size_t size) {
  const std::size_t cls = class_for(size);
  if (cls >= config_.size_classes.size())
    return InvalidArgumentError("size exceeds largest size class");
  const std::size_t block_bytes = config_.size_classes[cls];

  auto& partials = partial_slabs_[cls];
  std::size_t slab_index;
  if (!partials.empty()) {
    slab_index = partials.back();
  } else {
    if (free_slabs_.empty())
      return ResourceExhaustedError("arena out of slabs");
    slab_index = free_slabs_.back();
    free_slabs_.pop_back();
    Slab& slab = slabs_[slab_index];
    slab.size_class = static_cast<int>(cls);
    slab.live = 0;
    const auto blocks_per_slab =
        static_cast<std::uint32_t>(config_.slab_bytes / block_bytes);
    slab.free_blocks.clear();
    for (std::uint32_t b = blocks_per_slab; b-- > 0;)
      slab.free_blocks.push_back(b);
    partials.push_back(slab_index);
  }

  Slab& slab = slabs_[slab_index];
  const std::uint32_t block = slab.free_blocks.back();
  slab.free_blocks.pop_back();
  ++slab.live;
  if (slab.free_blocks.empty()) {
    // Slab is now full: remove from the partial list.
    partials.erase(std::find(partials.begin(), partials.end(), slab_index));
  }
  const std::uint64_t offset =
      static_cast<std::uint64_t>(slab_index) * config_.slab_bytes +
      static_cast<std::uint64_t>(block) * block_bytes;
  used_bytes_ += block_bytes;
  ++live_blocks_;
  live_offsets_.insert(offset);
  return offset;
}

Status SlabAllocator::free(std::uint64_t offset) {
  auto it = live_offsets_.find(offset);
  if (it == live_offsets_.end())
    return InvalidArgumentError("free of unallocated offset");
  live_offsets_.erase(it);

  const std::size_t slab_index = slab_of(offset);
  Slab& slab = slabs_[slab_index];
  assert(slab.size_class >= 0);
  const std::size_t block_bytes =
      config_.size_classes[static_cast<std::size_t>(slab.size_class)];
  const auto block = static_cast<std::uint32_t>(
      (offset % config_.slab_bytes) / block_bytes);

  const bool was_full = slab.free_blocks.empty();
  slab.free_blocks.push_back(block);
  --slab.live;
  used_bytes_ -= block_bytes;
  --live_blocks_;

  auto& partials = partial_slabs_[static_cast<std::size_t>(slab.size_class)];
  if (slab.live == 0) {
    // Whole slab free: unbind it so any class can reuse it.
    if (!was_full)
      partials.erase(std::find(partials.begin(), partials.end(), slab_index));
    slab.size_class = -1;
    slab.free_blocks.clear();
    free_slabs_.push_back(slab_index);
  } else if (was_full) {
    partials.push_back(slab_index);
  }
  return Status::Ok();
}

StatusOr<std::size_t> SlabAllocator::block_size(std::uint64_t offset) const {
  if (live_offsets_.count(offset) == 0)
    return InvalidArgumentError("offset not allocated");
  const Slab& slab = slabs_[slab_of(offset)];
  return config_.size_classes[static_cast<std::size_t>(slab.size_class)];
}

std::uint64_t SlabAllocator::slack_bytes() const noexcept {
  std::uint64_t bound = 0;
  for (const Slab& slab : slabs_) {
    if (slab.size_class >= 0)
      bound += config_.slab_bytes;
  }
  return bound - used_bytes_;
}

}  // namespace dm::mem
