// Multi-granularity page compression (FastSwap §IV.H) and the Zswap
// baseline's zbud-style packing model.
//
// FastSwap stores each compressed 4 KiB page in the smallest bucket from a
// fixed granularity set that fits it. The paper evaluates two sets:
//   2-granularity: {2 KiB, 4 KiB}
//   4-granularity: {512 B, 1 KiB, 2 KiB, 4 KiB}
// A page whose compressed form does not fit the largest sub-page bucket is
// stored raw (4 KiB, ratio 1.0). The *effective* compression ratio is
// page_size / bucket_size — slack inside the bucket is wasted, which is
// exactly why more granularities help (Fig 3).
//
// Zswap (the paper's compression baseline) compresses into a zbud pool that
// packs at most two compressed pages per 4 KiB frame, capping its effective
// ratio at 2.0 regardless of how compressible the data is.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "compress/lz.h"

namespace dm::compress {

inline constexpr std::size_t kPageSize = 4096;

enum class GranularityMode {
  kTwo,   // {2K, 4K}
  kFour,  // {512, 1K, 2K, 4K}
};

// Bucket sizes for a mode, ascending.
std::span<const std::size_t> buckets_for(GranularityMode mode) noexcept;

struct CompressedPage {
  std::vector<std::byte> data;     // stored bytes (LZ payload, or the raw
                                   // page itself when is_raw)
  std::size_t bucket = kPageSize;  // storage footprint charged
  bool is_raw = false;             // incompressible: stored as-is

  double ratio() const noexcept {
    return static_cast<double>(kPageSize) / static_cast<double>(bucket);
  }
};

class PageCompressor {
 public:
  explicit PageCompressor(GranularityMode mode = GranularityMode::kFour)
      : mode_(mode) {}

  GranularityMode mode() const noexcept { return mode_; }

  // Compresses a 4 KiB page into the smallest fitting bucket.
  CompressedPage compress(std::span<const std::byte> page) const;

  // Restores the original 4 KiB page into `out` (must be kPageSize).
  Status decompress(const CompressedPage& compressed,
                    std::span<std::byte> out) const;

 private:
  GranularityMode mode_;
};

// Effective storage charged by Zswap's zbud pool for a page whose LZ size is
// `compressed_size`: half a frame when two such pages pair up, a full frame
// otherwise.
std::size_t zswap_zbud_footprint(std::size_t compressed_size) noexcept;

// Shannon entropy of the first `probe_bytes` of `data`, in bits per byte
// (0.0 for constant data, 8.0 for uniformly random bytes). This is the
// lightweight compressibility probe behind the swap path's compression
// admission control (Fig 4's compressibility knob, read the cheap way):
// a page whose prefix entropy is near 8 will not fit any sub-page bucket,
// so the LZ pass can be skipped outright.
double sample_entropy(std::span<const std::byte> data,
                      std::size_t probe_bytes) noexcept;

}  // namespace dm::compress
