#include "compress/lz.h"

#include <array>
#include <cstring>

#include "common/status.h"

namespace dm::compress {
namespace {

// Hash of the 3 bytes at p, for the match-finder table.
inline std::uint32_t hash3(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, 3);
  return (v * 2654435761u) >> 20;  // 12-bit table index
}

constexpr std::size_t kHashSize = 1u << 12;

}  // namespace

std::vector<std::byte> lz_compress(std::span<const std::byte> input) {
  std::vector<std::byte> out;
  out.reserve(input.size() / 2 + 16);

  std::array<std::int32_t, kHashSize> table;
  table.fill(-1);

  std::size_t pos = 0;
  while (pos < input.size()) {
    // Emit one control byte covering up to 8 items.
    const std::size_t control_at = out.size();
    out.push_back(std::byte{0});
    std::uint8_t control = 0;

    for (int item = 0; item < 8 && pos < input.size(); ++item) {
      std::size_t best_len = 0;
      std::size_t best_off = 0;
      if (pos + kMinMatch <= input.size()) {
        const std::uint32_t h = hash3(input.data() + pos);
        const std::int32_t cand = table[h];
        table[h] = static_cast<std::int32_t>(pos);
        if (cand >= 0) {
          const auto offset = pos - static_cast<std::size_t>(cand);
          if (offset > 0 && offset <= kLzWindow) {
            std::size_t len = 0;
            const std::size_t limit =
                std::min(kMaxMatch, input.size() - pos);
            const std::byte* src = input.data() + cand;
            const std::byte* cur = input.data() + pos;
            while (len < limit && src[len] == cur[len]) ++len;
            if (len >= kMinMatch) {
              best_len = len;
              best_off = offset;
            }
          }
        }
      }
      if (best_len >= kMinMatch) {
        control |= static_cast<std::uint8_t>(1u << item);
        // offset-1 fits 11 bits (1..2048), length-3 fits 5 bits (3..34).
        const auto packed = static_cast<std::uint16_t>(
            ((best_off - 1) << 5) | (best_len - kMinMatch));
        out.push_back(static_cast<std::byte>(packed & 0xff));
        out.push_back(static_cast<std::byte>(packed >> 8));
        pos += best_len;
      } else {
        out.push_back(input[pos]);
        ++pos;
      }
    }
    out[control_at] = static_cast<std::byte>(control);
  }
  return out;
}

Status lz_decompress(std::span<const std::byte> input,
                     std::span<std::byte> output) {
  std::size_t in = 0;
  std::size_t out = 0;
  while (out < output.size()) {
    if (in >= input.size()) return DataLossError("compressed stream truncated");
    const auto control = static_cast<std::uint8_t>(input[in++]);
    for (int item = 0; item < 8 && out < output.size(); ++item) {
      if (control & (1u << item)) {
        if (in + 2 > input.size())
          return DataLossError("truncated match token");
        const auto lo = static_cast<std::uint16_t>(input[in]);
        const auto hi = static_cast<std::uint16_t>(input[in + 1]);
        in += 2;
        const std::uint16_t packed = static_cast<std::uint16_t>(lo | (hi << 8));
        const std::size_t offset = static_cast<std::size_t>(packed >> 5) + 1;
        const std::size_t length = (packed & 0x1f) + kMinMatch;
        if (offset > out) return DataLossError("match offset before start");
        if (out + length > output.size())
          return DataLossError("match overruns output");
        // Byte-wise copy: matches may self-overlap (RLE-style).
        for (std::size_t i = 0; i < length; ++i, ++out)
          output[out] = output[out - offset];
      } else {
        if (in >= input.size()) return DataLossError("truncated literal");
        output[out++] = input[in++];
      }
    }
  }
  return Status::Ok();
}

}  // namespace dm::compress
