// LZSS-style compressor used for page compression.
//
// This is a real, round-trip-correct implementation (not a model): FastSwap's
// compression benefit in the paper comes from actual page contents being
// compressible, so the reproduction compresses actual page bytes. Format:
// groups of 8 items preceded by a control byte; each item is either a
// literal byte or a (offset:11, length:5) match of 3..34 bytes within a
// 2 KiB window — a good fit for 4 KiB pages and cheap enough to run millions
// of times in the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace dm::compress {

inline constexpr std::size_t kLzWindow = 2048;
inline constexpr std::size_t kMinMatch = 3;
inline constexpr std::size_t kMaxMatch = 34;

// Compresses `input`; output is self-delimiting given the original size.
std::vector<std::byte> lz_compress(std::span<const std::byte> input);

// Decompresses into `output`, which must be exactly the original size.
Status lz_decompress(std::span<const std::byte> input,
                     std::span<std::byte> output);

// Upper bound on compressed size for worst-case (incompressible) input.
constexpr std::size_t lz_max_compressed_size(std::size_t input_size) {
  return input_size + (input_size + 7) / 8 + 8;
}

}  // namespace dm::compress
