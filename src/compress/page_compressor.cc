#include "compress/page_compressor.h"

#include <array>
#include <cassert>
#include <cmath>
#include <cstring>

#include "common/status.h"

namespace dm::compress {
namespace {

constexpr std::array<std::size_t, 2> kTwoBuckets{2048, 4096};
constexpr std::array<std::size_t, 4> kFourBuckets{512, 1024, 2048, 4096};

}  // namespace

std::span<const std::size_t> buckets_for(GranularityMode mode) noexcept {
  switch (mode) {
    case GranularityMode::kTwo: return kTwoBuckets;
    case GranularityMode::kFour: return kFourBuckets;
  }
  return kFourBuckets;
}

CompressedPage PageCompressor::compress(std::span<const std::byte> page) const {
  assert(page.size() == kPageSize);
  CompressedPage result;
  result.data = lz_compress(page);

  const auto buckets = buckets_for(mode_);
  for (std::size_t bucket : buckets) {
    if (bucket == kPageSize) break;  // the raw fallback, handled below
    if (result.data.size() <= bucket) {
      result.bucket = bucket;
      result.is_raw = false;
      return result;
    }
  }
  // Did not fit any sub-page bucket: store the raw page.
  result.data.assign(page.begin(), page.end());
  result.bucket = kPageSize;
  result.is_raw = true;
  return result;
}

Status PageCompressor::decompress(const CompressedPage& compressed,
                                  std::span<std::byte> out) const {
  if (out.size() != kPageSize)
    return InvalidArgumentError("output must be one page");
  if (compressed.is_raw) {
    if (compressed.data.size() != kPageSize)
      return DataLossError("raw page has wrong size");
    std::memcpy(out.data(), compressed.data.data(), kPageSize);
    return Status::Ok();
  }
  return lz_decompress(compressed.data, out);
}

std::size_t zswap_zbud_footprint(std::size_t compressed_size) noexcept {
  // zbud pairs two buddies per frame when each fits half a frame.
  if (compressed_size <= kPageSize / 2) return kPageSize / 2;
  return kPageSize;
}

double sample_entropy(std::span<const std::byte> data,
                      std::size_t probe_bytes) noexcept {
  const std::size_t n = std::min(probe_bytes, data.size());
  if (n == 0) return 0.0;
  std::array<std::uint32_t, 256> counts{};
  for (std::size_t i = 0; i < n; ++i)
    ++counts[static_cast<std::uint8_t>(data[i])];
  double entropy = 0.0;
  const double total = static_cast<double>(n);
  for (std::uint32_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / total;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace dm::compress
