#include "ec/rs_codec.h"

#include <algorithm>

#include "common/status.h"
#include "ec/gf256.h"

namespace dm::ec {
namespace {

// Invert an n x n matrix over GF(2^8) by Gauss–Jordan elimination with
// partial pivoting (any non-zero pivot works in a field). Returns false if
// the matrix is singular — which for Vandermonde submatrices of distinct
// evaluation points never happens, but the guard keeps the algebra honest.
bool invert_matrix(std::vector<std::uint8_t>& m, std::size_t n,
                   std::vector<std::uint8_t>& out) {
  out.assign(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) out[i * n + i] = 1;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && m[pivot * n + col] == 0) ++pivot;
    if (pivot == n) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(m[pivot * n + j], m[col * n + j]);
        std::swap(out[pivot * n + j], out[col * n + j]);
      }
    }
    const std::uint8_t inv = gf_inv(m[col * n + col]);
    for (std::size_t j = 0; j < n; ++j) {
      m[col * n + j] = gf_mul(m[col * n + j], inv);
      out[col * n + j] = gf_mul(out[col * n + j], inv);
    }
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col) continue;
      const std::uint8_t factor = m[row * n + col];
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        m[row * n + j] =
            static_cast<std::uint8_t>(m[row * n + j] ^
                                      gf_mul(factor, m[col * n + j]));
        out[row * n + j] =
            static_cast<std::uint8_t>(out[row * n + j] ^
                                      gf_mul(factor, out[col * n + j]));
      }
    }
  }
  return true;
}

// rows x k times k x k -> rows x k, row-major.
std::vector<std::uint8_t> mat_mul(const std::vector<std::uint8_t>& a,
                                  std::size_t rows,
                                  const std::vector<std::uint8_t>& b,
                                  std::size_t k) {
  std::vector<std::uint8_t> out(rows * k, 0);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < k; ++j) {
      std::uint8_t acc = 0;
      for (std::size_t t = 0; t < k; ++t)
        acc = static_cast<std::uint8_t>(acc ^ gf_mul(a[i * k + t],
                                                     b[t * k + j]));
      out[i * k + j] = acc;
    }
  return out;
}

// Multiply selected coding-matrix rows against a set of source shards:
// out[i] = sum_j rows[i][j] * src[j]. Shared by encode (parity rows over
// data shards) and reconstruct (decode rows over survivors).
void code_shards(const std::vector<const std::uint8_t*>& src,
                 const std::vector<std::uint8_t>& rows, std::size_t k,
                 std::vector<std::uint8_t*>& out, std::size_t len) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::fill(out[i], out[i] + len, 0);
    for (std::size_t j = 0; j < k; ++j)
      gf_mul_add(rows[i * k + j], src[j], out[i], len);
  }
}

std::uint8_t* bytes(std::vector<std::byte>& v) {
  return reinterpret_cast<std::uint8_t*>(v.data());
}
const std::uint8_t* bytes(const std::vector<std::byte>& v) {
  return reinterpret_cast<const std::uint8_t*>(v.data());
}

}  // namespace

StatusOr<RsCodec> RsCodec::make(std::size_t k, std::size_t r) {
  if (k == 0) return InvalidArgumentError("rs: k must be >= 1");
  if (k + r > kMaxShards)
    return InvalidArgumentError("rs: k + r exceeds GF(2^8) limit of 255");
  const std::size_t n = k + r;
  // Vandermonde: V[i][j] = i^j for i in [0, n), j in [0, k).
  std::vector<std::uint8_t> vand(n * k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j)
      vand[i * k + j] = gf_pow(static_cast<std::uint8_t>(i), j);
  // Systematize: M = V * inverse(top k x k of V). Top block becomes the
  // identity, and any k rows of M stay invertible because row operations
  // applied uniformly preserve the Vandermonde MDS property.
  std::vector<std::uint8_t> top(vand.begin(), vand.begin() + k * k);
  std::vector<std::uint8_t> top_inv;
  if (!invert_matrix(top, k, top_inv))
    return InternalError("rs: Vandermonde top block singular");
  return RsCodec(k, r, mat_mul(vand, n, top_inv, k));
}

std::size_t RsCodec::shard_size(std::size_t data_len, std::size_t k) {
  if (data_len == 0) return 1;
  return (data_len + k - 1) / k;
}

StatusOr<std::vector<std::vector<std::byte>>> RsCodec::encode(
    std::span<const std::byte> data) const {
  const std::size_t len = shard_size(data.size(), k_);
  std::vector<std::vector<std::byte>> shards(total_shards());
  for (std::size_t i = 0; i < k_; ++i) {
    shards[i].assign(len, std::byte{0});
    const std::size_t begin = i * len;
    if (begin < data.size()) {
      const std::size_t take = std::min(len, data.size() - begin);
      std::copy_n(data.data() + begin, take, shards[i].data());
    }
  }
  if (r_ > 0) {
    std::vector<const std::uint8_t*> src(k_);
    for (std::size_t i = 0; i < k_; ++i) src[i] = bytes(shards[i]);
    std::vector<std::uint8_t*> out(r_);
    std::vector<std::uint8_t> parity_rows(matrix_.begin() + k_ * k_,
                                          matrix_.end());
    for (std::size_t i = 0; i < r_; ++i) {
      shards[k_ + i].assign(len, std::byte{0});
      out[i] = bytes(shards[k_ + i]);
    }
    code_shards(src, parity_rows, k_, out, len);
  }
  return shards;
}

Status RsCodec::reconstruct(std::vector<std::vector<std::byte>>& shards) const {
  if (shards.size() != total_shards())
    return InvalidArgumentError("rs: shard slot count mismatch");
  std::vector<std::size_t> present;
  std::size_t len = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].empty()) continue;
    if (len == 0) len = shards[i].size();
    if (shards[i].size() != len)
      return InvalidArgumentError("rs: present shards differ in size");
    present.push_back(i);
  }
  if (present.size() < k_)
    return DataLossError("rs: fewer than k shards survive");
  if (present.size() == total_shards()) return Status::Ok();

  // Decode matrix: the k coding-matrix rows of the first k survivors,
  // inverted. survivors = rows * data  =>  data = rows^-1 * survivors.
  std::vector<std::uint8_t> sub(k_ * k_);
  for (std::size_t i = 0; i < k_; ++i)
    std::copy_n(matrix_.begin() + present[i] * k_, k_, sub.begin() + i * k_);
  std::vector<std::uint8_t> decode_rows;
  if (!invert_matrix(sub, k_, decode_rows))
    return InternalError("rs: survivor submatrix singular");

  std::vector<const std::uint8_t*> src(k_);
  std::vector<std::vector<std::byte>> sources(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    sources[i] = shards[present[i]];  // copy: targets may alias survivors
    src[i] = bytes(sources[i]);
  }

  // Missing data shards first (decode rows directly)...
  std::vector<std::uint8_t> rows;
  std::vector<std::uint8_t*> out;
  for (std::size_t s = 0; s < k_; ++s) {
    if (!shards[s].empty()) continue;
    shards[s].assign(len, std::byte{0});
    out.push_back(bytes(shards[s]));
    rows.insert(rows.end(), decode_rows.begin() + s * k_,
                decode_rows.begin() + (s + 1) * k_);
  }
  // ...then missing parity shards: parity_row * (decode_rows * survivors)
  // composed into one matrix so parity regenerates in the same pass.
  for (std::size_t s = k_; s < total_shards(); ++s) {
    if (!shards[s].empty()) continue;
    shards[s].assign(len, std::byte{0});
    out.push_back(bytes(shards[s]));
    for (std::size_t j = 0; j < k_; ++j) {
      std::uint8_t acc = 0;
      for (std::size_t t = 0; t < k_; ++t)
        acc = static_cast<std::uint8_t>(
            acc ^ gf_mul(matrix_[s * k_ + t], decode_rows[t * k_ + j]));
      rows.push_back(acc);
    }
  }
  code_shards(src, rows, k_, out, len);
  return Status::Ok();
}

StatusOr<std::vector<std::byte>> RsCodec::decode(
    const std::vector<std::vector<std::byte>>& shards,
    std::size_t data_len) const {
  std::vector<std::vector<std::byte>> work = shards;
  DM_RETURN_IF_ERROR(reconstruct(work));
  const std::size_t len = work[0].size();
  if (len * k_ < data_len)
    return InvalidArgumentError("rs: shards too small for requested length");
  std::vector<std::byte> out(data_len);
  for (std::size_t i = 0; i < k_ && i * len < data_len; ++i) {
    const std::size_t take = std::min(len, data_len - i * len);
    std::copy_n(work[i].data(), take, out.data() + i * len);
  }
  return out;
}

StatusOr<bool> RsCodec::verify(
    const std::vector<std::vector<std::byte>>& shards) const {
  if (shards.size() != total_shards())
    return InvalidArgumentError("rs: shard slot count mismatch");
  std::size_t len = 0;
  for (const auto& s : shards) {
    if (s.empty()) return InvalidArgumentError("rs: verify needs all shards");
    if (len == 0) len = s.size();
    if (s.size() != len)
      return InvalidArgumentError("rs: present shards differ in size");
  }
  if (r_ == 0) return true;
  std::vector<const std::uint8_t*> src(k_);
  for (std::size_t i = 0; i < k_; ++i) src[i] = bytes(shards[i]);
  std::vector<std::uint8_t> parity_rows(matrix_.begin() + k_ * k_,
                                        matrix_.end());
  std::vector<std::byte> scratch(len);
  std::vector<std::uint8_t*> out(1);
  for (std::size_t i = 0; i < r_; ++i) {
    std::fill(scratch.begin(), scratch.end(), std::byte{0});
    out[0] = bytes(scratch);
    std::vector<std::uint8_t> row(parity_rows.begin() + i * k_,
                                  parity_rows.begin() + (i + 1) * k_);
    code_shards(src, row, k_, out, len);
    if (!std::equal(scratch.begin(), scratch.end(), shards[k_ + i].begin()))
      return false;
  }
  return true;
}

std::span<const std::uint8_t> RsCodec::matrix_row(std::size_t shard) const {
  return {matrix_.data() + shard * k_, k_};
}

}  // namespace dm::ec
