// Systematic Reed–Solomon (k, r) erasure codec over GF(2^8).
//
// A page is split into k equal data shards (last shard zero-padded) and
// extended with r parity shards; the original bytes survive the loss of any
// r of the k+r shards. The coding matrix is the Backblaze-style systematic
// Vandermonde construction: build the (k+r) x k Vandermonde matrix V with
// V[i][j] = i^j, then right-multiply by the inverse of its top k x k block
// so the top k rows become the identity (data shards are stored verbatim)
// and the bottom r rows become the parity matrix. Any k rows of the result
// remain linearly independent, which is exactly the MDS property degraded
// reads rely on.
//
// The codec is pure computation: no clocks, no randomness, no I/O. Callers
// in the simulation account for encode/decode CPU cost via the virtual-time
// CostModel; the codec itself only transforms bytes, so it is trivially
// deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace dm::ec {

class RsCodec {
 public:
  // GF(2^8) supports at most 255 distinct evaluation points.
  static constexpr std::size_t kMaxShards = 255;

  // k >= 1 data shards, r >= 0 parity shards, k + r <= kMaxShards.
  [[nodiscard]] static StatusOr<RsCodec> make(std::size_t k, std::size_t r);

  // Bytes per shard for a payload of data_len: ceil(data_len / k), and at
  // least 1 so zero-length payloads still produce addressable shards.
  [[nodiscard]] static std::size_t shard_size(std::size_t data_len,
                                              std::size_t k);

  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] std::size_t r() const noexcept { return r_; }
  [[nodiscard]] std::size_t total_shards() const noexcept { return k_ + r_; }

  // Splits data into k padded data shards and appends r parity shards.
  // Shards [0, k) hold the payload bytes verbatim (systematic code).
  [[nodiscard]] StatusOr<std::vector<std::vector<std::byte>>> encode(
      std::span<const std::byte> data) const;

  // In-place recovery: shards has exactly k+r slots, missing shards are
  // empty vectors, present shards all share one size. Requires >= k present
  // shards; on success every slot is filled. kDataLoss when fewer than k
  // survive, kInvalidArgument on shape errors.
  [[nodiscard]] Status reconstruct(
      std::vector<std::vector<std::byte>>& shards) const;

  // Reassembles the original data_len bytes from any >= k present shards
  // (reconstructing first if data shards are missing). Does not mutate the
  // caller's shard vector.
  [[nodiscard]] StatusOr<std::vector<std::byte>> decode(
      const std::vector<std::vector<std::byte>>& shards,
      std::size_t data_len) const;

  // Parity consistency check over a fully-present shard set: recomputes
  // every parity shard from the data shards and compares. Returns true when
  // consistent; false signals at least one corrupted shard. Requires all
  // k+r shards present (kInvalidArgument otherwise).
  [[nodiscard]] StatusOr<bool> verify(
      const std::vector<std::vector<std::byte>>& shards) const;

  // Row `shard` of the (k+r) x k coding matrix — exposed for tests that
  // assert the MDS structure (top k rows identity, any k rows invertible).
  [[nodiscard]] std::span<const std::uint8_t> matrix_row(
      std::size_t shard) const;

 private:
  RsCodec(std::size_t k, std::size_t r, std::vector<std::uint8_t> matrix)
      : k_(k), r_(r), matrix_(std::move(matrix)) {}

  std::size_t k_ = 0;
  std::size_t r_ = 0;
  // (k+r) x k row-major coding matrix; rows [0, k) are the identity.
  std::vector<std::uint8_t> matrix_;
};

}  // namespace dm::ec
