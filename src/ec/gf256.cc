#include "ec/gf256.h"

namespace dm::ec {
namespace {

struct Tables {
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint8_t, 256> log{};
  Tables() {
    std::uint16_t x = 1;
    for (std::size_t i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[static_cast<std::uint8_t>(x)] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    // Mirror so exp[log[a] + log[b]] never needs a mod-255 reduction
    // (log sums reach at most 508).
    for (std::size_t i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

const std::array<std::uint8_t, 512>& gf_exp_table() noexcept {
  return tables().exp;
}

const std::array<std::uint8_t, 256>& gf_log_table() noexcept {
  return tables().log;
}

std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + 255 - t.log[b]];
}

std::uint8_t gf_inv(std::uint8_t a) noexcept {
  const auto& t = tables();
  return t.exp[255 - static_cast<std::size_t>(t.log[a])];
}

std::uint8_t gf_pow(std::uint8_t a, std::size_t n) noexcept {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const std::size_t e = (static_cast<std::size_t>(t.log[a]) * n) % 255;
  return t.exp[e];
}

void gf_mul_add(std::uint8_t coeff, const std::uint8_t* in, std::uint8_t* out,
                std::size_t len) noexcept {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (std::size_t i = 0; i < len; ++i) out[i] ^= in[i];
    return;
  }
  // Per-coefficient 256-entry product table: one table build amortized
  // over the whole shard keeps the inner loop to a single lookup + xor.
  const auto& t = tables();
  const std::size_t lc = t.log[coeff];
  std::uint8_t row[256];
  row[0] = 0;
  for (std::size_t b = 1; b < 256; ++b)
    row[b] = t.exp[lc + t.log[static_cast<std::uint8_t>(b)]];
  for (std::size_t i = 0; i < len; ++i) out[i] ^= row[in[i]];
}

}  // namespace dm::ec
