// GF(2^8) arithmetic for the Reed–Solomon codec (Hydra-style resilience).
//
// The field is GF(2^8) with the AES-adjacent reduction polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the conventional choice for storage
// erasure codes. Multiplication and division go through precomputed log/exp
// tables built once at first use from pure integer math — no floating
// point, no randomness, no global constructors with observable order — so
// every operation is deterministic and byte-identical across runs and
// platforms.
#pragma once

#include <array>
#include <cstdint>

namespace dm::ec {

// 0..255 exponentials of the generator 2 (exp[i] = 2^i mod 0x11d), doubled
// to 512 entries so gf_mul can skip the mod-255 reduction of the log sum.
const std::array<std::uint8_t, 512>& gf_exp_table() noexcept;
// Discrete logs base 2; log[0] is unused (0 has no log).
const std::array<std::uint8_t, 256>& gf_log_table() noexcept;

[[nodiscard]] inline std::uint8_t gf_mul(std::uint8_t a,
                                         std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const auto& log = gf_log_table();
  return gf_exp_table()[static_cast<std::size_t>(log[a]) + log[b]];
}

// b must be non-zero (division by zero is a programming error; callers
// guard pivots before dividing).
[[nodiscard]] std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) noexcept;

// Multiplicative inverse; a must be non-zero.
[[nodiscard]] std::uint8_t gf_inv(std::uint8_t a) noexcept;

// a^n for n >= 0 (a^0 == 1, including 0^0 by convention).
[[nodiscard]] std::uint8_t gf_pow(std::uint8_t a, std::size_t n) noexcept;

// out[i] ^= coeff * in[i] over `len` bytes — the inner loop of both encode
// and reconstruct (XOR is GF(2^8) addition).
void gf_mul_add(std::uint8_t coeff, const std::uint8_t* in, std::uint8_t* out,
                std::size_t len) noexcept;

}  // namespace dm::ec
