// Key-value cache over disaggregated memory (paper §II.B, §III).
//
// "Memory swapping and key-value based memory caching are the two killer
// applications for partial memory disaggregation." The swap path lives in
// src/swap; this is the other one: a memcached-class cache whose hot tier
// is plain DRAM and whose overflow values are parked in disaggregated
// memory through the server's LDMC (node-level shared pool first, then
// remote memory) instead of being dropped.
//
// With the disaggregated tier disabled the store behaves like a plain
// bounded cache: overflow values are discarded and later gets miss — the
// application then pays its backend (database) cost, which is the
// comparison bench_ablation_kv_cache quantifies.
//
// Values are stored verbatim together with their key (the entry is
// self-describing), so a get from the disaggregated tier verifies that the
// hash-derived entry id really belongs to the requested key.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/lru.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "core/ldmc.h"

namespace dm::kv {

class KvStore {
 public:
  struct Config {
    // DRAM budget for hot values (keys + metadata are always in DRAM, as
    // in memcached).
    std::uint64_t hot_bytes = 16 * MiB;
    // Park overflow values in disaggregated memory (vs dropping them).
    bool use_disaggregated_memory = true;
    // CPU cost per operation (hashing, bucket walk, bookkeeping).
    SimTime cpu_ns_per_op = 500;
    // Promote disaggregated-tier hits back into the hot tier.
    bool promote_on_hit = true;
  };

  KvStore(core::Ldmc& client, Config config);

  // Inserts or replaces a value. Values up to 64 KiB minus header.
  Status set(std::string_view key, std::span<const std::byte> value);

  // Returns the value, from the hot tier or the disaggregated tier.
  // kNotFound when the key was never set, was erased, or its overflow
  // value was dropped (disaggregation disabled).
  StatusOr<std::vector<std::byte>> get(std::string_view key);

  Status erase(std::string_view key);
  bool contains(std::string_view key) const;

  std::uint64_t hot_bytes_used() const noexcept { return hot_used_; }
  std::size_t hot_entries() const noexcept { return hot_.size(); }
  std::size_t overflow_entries() const noexcept { return overflow_.size(); }
  MetricsRegistry& metrics() noexcept { return metrics_; }
  core::Ldmc& client() noexcept { return client_; }

 private:
  struct HotValue {
    std::vector<std::byte> bytes;
  };

  void charge(SimTime cost);
  Status evict_one();
  Status erase_internal(const std::string& key, bool missing_ok);
  // Serialized form: u32 key length, key bytes, value bytes.
  static std::vector<std::byte> encode(std::string_view key,
                                       std::span<const std::byte> value);
  static StatusOr<std::pair<std::string, std::vector<std::byte>>> decode(
      std::span<const std::byte> entry);
  mem::EntryId allocate_entry_id(const std::string& key);

  core::Ldmc& client_;
  Config config_;
  std::unordered_map<std::string, HotValue> hot_;
  LruTracker<std::string> lru_;
  std::unordered_map<std::string, mem::EntryId> overflow_;
  std::uint64_t hot_used_ = 0;
  std::uint64_t next_salt_ = 0;
  MetricsRegistry metrics_;
};

}  // namespace dm::kv
