#include "kvstore/kv_store.h"

#include <cstring>

#include "common/checksum.h"
#include "common/status.h"
#include "common/units.h"
#include "core/ldmc.h"

namespace dm::kv {
namespace {

constexpr std::size_t kMaxEntryBytes = 64 * 1024;

std::uint64_t hash_key(std::string_view key, std::uint64_t salt) {
  return fnv1a(std::as_bytes(std::span(key.data(), key.size()))) ^
         mix64(salt);
}

}  // namespace

KvStore::KvStore(core::Ldmc& client, Config config)
    : client_(client), config_(config) {}

void KvStore::charge(SimTime cost) {
  auto& sim = client_.service().node().simulator();
  sim.run_until(sim.now() + cost);
}

std::vector<std::byte> KvStore::encode(std::string_view key,
                                       std::span<const std::byte> value) {
  std::vector<std::byte> out(sizeof(std::uint32_t) + key.size() +
                             value.size());
  const auto key_len = static_cast<std::uint32_t>(key.size());
  std::memcpy(out.data(), &key_len, sizeof(key_len));
  std::memcpy(out.data() + sizeof(key_len), key.data(), key.size());
  std::memcpy(out.data() + sizeof(key_len) + key.size(), value.data(),
              value.size());
  return out;
}

StatusOr<std::pair<std::string, std::vector<std::byte>>> KvStore::decode(
    std::span<const std::byte> entry) {
  if (entry.size() < sizeof(std::uint32_t))
    return DataLossError("kv entry truncated");
  std::uint32_t key_len = 0;
  std::memcpy(&key_len, entry.data(), sizeof(key_len));
  if (entry.size() < sizeof(key_len) + key_len)
    return DataLossError("kv entry key truncated");
  std::string key(reinterpret_cast<const char*>(entry.data() + sizeof(key_len)),
                  key_len);
  std::vector<std::byte> value(entry.begin() + sizeof(key_len) + key_len,
                               entry.end());
  return std::pair{std::move(key), std::move(value)};
}

mem::EntryId KvStore::allocate_entry_id(const std::string& key) {
  // Hash-derived id, salted past collisions with already-assigned ids of
  // *other* keys (the index is the source of truth; the stored key makes
  // wrong-id reads detectable rather than silent).
  for (;; ++next_salt_) {
    const mem::EntryId id = hash_key(key, next_salt_);
    if (!client_.contains(id)) return id;
  }
}

Status KvStore::set(std::string_view key, std::span<const std::byte> value) {
  charge(config_.cpu_ns_per_op);
  if (sizeof(std::uint32_t) + key.size() + value.size() > kMaxEntryBytes)
    return InvalidArgumentError("value too large for one kv entry");
  std::string key_owned(key);

  // Replace any previous copy in either tier.
  DM_RETURN_IF_ERROR(erase_internal(key_owned, /*missing_ok=*/true));

  while (hot_used_ + value.size() > config_.hot_bytes) {
    Status evicted = evict_one();
    if (!evicted.ok()) break;  // nothing evictable
  }
  if (hot_used_ + value.size() > config_.hot_bytes) {
    // Even an empty hot tier cannot honour the budget for this value:
    // park it down-tier directly instead of blowing the budget.
    if (config_.use_disaggregated_memory) {
      const mem::EntryId id = allocate_entry_id(key_owned);
      Status stored = client_.put_sync(id, encode(key_owned, value));
      if (stored.ok()) {
        overflow_[key_owned] = id;
        ++metrics_.counter("kv.overflow_stores");
        ++metrics_.counter("kv.sets");
        return Status::Ok();
      }
    }
    ++metrics_.counter("kv.overflow_drops");
    return ResourceExhaustedError("value exceeds hot budget and no DM room");
  }
  hot_used_ += value.size();
  hot_[key_owned] = HotValue{{value.begin(), value.end()}};
  lru_.touch(key_owned);
  ++metrics_.counter("kv.sets");
  return Status::Ok();
}

Status KvStore::evict_one() {
  auto victim = lru_.evict_lru();
  if (!victim) return ResourceExhaustedError("hot tier empty");
  auto it = hot_.find(*victim);
  if (it == hot_.end()) return InternalError("lru/hot tier out of sync");
  hot_used_ -= it->second.bytes.size();

  if (config_.use_disaggregated_memory) {
    const mem::EntryId id = allocate_entry_id(*victim);
    auto encoded = encode(*victim, it->second.bytes);
    Status stored = client_.put_sync(id, encoded);
    if (stored.ok()) {
      overflow_[*victim] = id;
      ++metrics_.counter("kv.overflow_stores");
    } else {
      ++metrics_.counter("kv.overflow_drops");  // DM full: value is lost
    }
  } else {
    ++metrics_.counter("kv.overflow_drops");
  }
  hot_.erase(it);
  return Status::Ok();
}

StatusOr<std::vector<std::byte>> KvStore::get(std::string_view key) {
  charge(config_.cpu_ns_per_op);
  std::string key_owned(key);
  if (auto it = hot_.find(key_owned); it != hot_.end()) {
    lru_.touch(key_owned);
    ++metrics_.counter("kv.hot_hits");
    return it->second.bytes;
  }
  auto overflow = overflow_.find(key_owned);
  if (overflow == overflow_.end()) {
    ++metrics_.counter("kv.misses");
    return NotFoundError("key not cached");
  }
  auto size = client_.stored_size(overflow->second);
  if (!size.ok()) return size.status();
  std::vector<std::byte> entry(*size);
  DM_RETURN_IF_ERROR(client_.get_sync(overflow->second, entry));
  auto decoded = decode(entry);
  if (!decoded.ok()) return decoded.status();
  if (decoded->first != key_owned)
    return DataLossError("kv entry key mismatch");
  ++metrics_.counter("kv.dm_hits");

  std::vector<std::byte> value = std::move(decoded->second);
  if (config_.promote_on_hit) {
    DM_RETURN_IF_ERROR(client_.remove_sync(overflow->second));
    overflow_.erase(overflow);
    while (hot_used_ + value.size() > config_.hot_bytes) {
      Status evicted = evict_one();
      if (!evicted.ok()) break;
    }
    hot_used_ += value.size();
    hot_[key_owned] = HotValue{value};
    lru_.touch(key_owned);
    ++metrics_.counter("kv.promotions");
  }
  return value;
}

Status KvStore::erase(std::string_view key) {
  charge(config_.cpu_ns_per_op);
  return erase_internal(std::string(key), /*missing_ok=*/false);
}

Status KvStore::erase_internal(const std::string& key, bool missing_ok) {
  bool found = false;
  if (auto it = hot_.find(key); it != hot_.end()) {
    hot_used_ -= it->second.bytes.size();
    hot_.erase(it);
    lru_.erase(key);
    found = true;
  }
  if (auto it = overflow_.find(key); it != overflow_.end()) {
    DM_RETURN_IF_ERROR(client_.remove_sync(it->second));
    overflow_.erase(it);
    found = true;
  }
  if (!found && !missing_ok) return NotFoundError("key not cached");
  if (found) ++metrics_.counter("kv.erases");
  return Status::Ok();
}

bool KvStore::contains(std::string_view key) const {
  const std::string key_owned(key);
  return hot_.count(key_owned) > 0 || overflow_.count(key_owned) > 0;
}

}  // namespace dm::kv
