// Example: a memcached-style server under memory pressure, with the
// node-level : cluster-level distribution ratio as a knob (paper Fig 8).
//
//   $ ./kv_remote_memory [shm_percent]
//   $ ./kv_remote_memory 70        # 70% of spill to node shm, 30% remote
//
// Shows throughput as a function of where the overflow lives.
#include <cstdio>
#include <cstdlib>

#include "core/dm_system.h"
#include "swap/systems.h"
#include "workloads/driver.h"

int main(int argc, char** argv) {
  using namespace dm;
  const int shm_percent = argc > 1 ? std::atoi(argv[1]) : 100;

  constexpr std::uint64_t kPages = 512;
  constexpr std::uint64_t kResident = kPages / 2;
  constexpr std::uint64_t kOps = 20000;

  const workloads::AppSpec* app = workloads::find_app("Memcached");

  auto setup = swap::make_fastswap_ratio(shm_percent / 100.0, kResident);
  core::DmSystem::Config config;
  config.node_count = 4;
  config.node.shm.arena_bytes = 32 * MiB;
  config.node.recv.arena_bytes = 32 * MiB;
  config.service = setup.service;
  core::DmSystem system(config);
  system.start();

  auto& client = system.create_server(0, 256 * MiB, setup.ldmc);
  swap::SwapManager memory(client, setup.swap,
                           workloads::content_for(*app, 5));

  // Warm the keyspace, then measure steady-state serving.
  Rng rng(5);
  for (std::uint64_t p = 0; p < kPages; ++p) (void)memory.touch(p);
  auto result = workloads::run_kv(memory, *app, kPages, kOps, rng);
  if (!result.status.ok()) {
    std::printf("run failed: %s\n", result.status.to_string().c_str());
    return 1;
  }
  std::printf("%s: %llu ETC ops in %s -> %.1f kops/s (faults %llu)\n",
              setup.name.c_str(), static_cast<unsigned long long>(kOps),
              format_duration(result.elapsed).c_str(),
              result.ops_per_second() / 1000.0,
              static_cast<unsigned long long>(result.faults));
  std::printf("tiers used: shm %llu / remote %llu / disk %llu puts\n",
              static_cast<unsigned long long>(client.puts_to_shm()),
              static_cast<unsigned long long>(client.puts_to_remote()),
              static_cast<unsigned long long>(client.puts_to_disk()));
  return 0;
}
