// Quickstart: bring up a 4-node disaggregated-memory cluster, create a
// virtual server, and move data through the tiers.
//
//   $ ./quickstart
//
// Walks the public API end to end: DmSystem bring-up, LDMC put/get, where
// the entry physically lives, and what it costs in virtual time.
#include <cstdio>
#include <vector>

#include "core/dm_system.h"

int main() {
  using namespace dm;

  // 1. Build and start the cluster (simulator, RDMA fabric, nodes, groups,
  //    heartbeats, leader election).
  core::DmSystem::Config config;
  config.node_count = 5;  // k=3 replication survives a crash with room to repair
  config.node.shm.arena_bytes = 16 * MiB;   // node-level shared pool arena
  config.node.recv.arena_bytes = 16 * MiB;  // memory donated to peers
  core::DmSystem system(config);
  system.start();
  std::printf("cluster up: %zu nodes, group leader of group 0 is node %u\n",
              system.node_count(), system.node(0).election()->leader());

  // 2. Create a virtual server (VM/container/executor) on node 0. It
  //    donates 10%% of its allocation to the node's shared memory pool.
  auto& client = system.create_server(/*node_index=*/0, /*bytes=*/64 * MiB);

  // 3. Put an entry. With default options the node-level shared pool is
  //    tried first (DRAM speed), then remote memory, then disk.
  std::vector<std::byte> page(4096, std::byte{42});
  SimTime t0 = system.simulator().now();
  if (auto s = client.put_sync(/*entry=*/1, page); !s.ok()) {
    std::printf("put failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("put 4 KiB -> %s (tier: shared memory) \n",
              format_duration(system.simulator().now() - t0).c_str());

  // 4. Force an entry to remote memory: a second server with shm disabled.
  core::LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& remote_client = system.create_server(1, 64 * MiB, remote_only);
  t0 = system.simulator().now();
  (void)remote_client.put_sync(7, page);
  auto loc = remote_client.map().lookup(7);
  std::printf("put 4 KiB -> %s (tier: remote, %zu replicas on nodes:",
              format_duration(system.simulator().now() - t0).c_str(),
              loc->replicas.size());
  for (const auto& replica : loc->replicas)
    std::printf(" %u", replica.node);
  std::printf(")\n");

  // 5. Read both back and verify.
  std::vector<std::byte> out(4096);
  (void)client.get_sync(1, out);
  const bool ok1 = out == page;
  (void)remote_client.get_sync(7, out);
  const bool ok2 = out == page;
  std::printf("reads intact: local=%s remote=%s\n", ok1 ? "yes" : "NO",
              ok2 ? "yes" : "NO");

  // 6. Crash a replica host; reads fail over, repair restores the factor.
  const net::NodeId dead = loc->replicas.front().node;
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    if (system.node(i).id() == dead) {
      system.crash_node(i);
      break;
    }
  }
  system.run_for(5 * kSecond);  // failure detection + re-replication
  (void)remote_client.get_sync(7, out);
  loc = remote_client.map().lookup(7);
  std::printf("after crashing node %u: read %s, replicas repaired to %zu\n",
              dead, out == page ? "intact" : "LOST", loc->replicas.size());

  // 7. The operator view: where the cluster's memory actually is.
  std::printf("\n%s", system.utilization_report().c_str());
  return 0;
}
