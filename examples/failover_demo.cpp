// Example: fault tolerance of the disaggregated memory system (paper §IV.D).
//
//   $ ./failover_demo
//
// Stores triple-replicated entries across a 5-node group, crashes the most
// loaded remote host mid-run, and shows (a) reads failing over immediately
// — with the causal trace of one failover printed from the event tracer —
// (b) the repair machinery restoring the replication factor, and (c) the
// recovered node rejoining.
#include <cstdio>
#include <vector>

#include "core/dm_system.h"
#include "sim/trace.h"
#include "workloads/page_content.h"

int main() {
  using namespace dm;

  core::DmSystem::Config config;
  config.node_count = 5;
  config.node.recv.arena_bytes = 16 * MiB;
  config.service.rdmc.replication = 3;  // §IV.D triple-replica writes
  core::DmSystem system(config);
  sim::Tracer tracer(1 << 16);
  system.set_tracer(&tracer);
  system.start();

  core::LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, remote_only);

  // Store 64 entries, all remote, 3 replicas each.
  std::vector<std::byte> page(4096);
  for (mem::EntryId id = 0; id < 64; ++id) {
    workloads::fill_page(page, id, 0.4, 99);
    if (auto s = client.put_sync(id, page); !s.ok()) {
      std::printf("put %llu failed: %s\n",
                  static_cast<unsigned long long>(id), s.to_string().c_str());
      return 1;
    }
  }
  std::printf("stored 64 entries x 3 replicas across the group\n");

  // Crash the most loaded host.
  std::size_t victim = 1;
  std::size_t most = 0;
  for (std::size_t i = 1; i < system.node_count(); ++i) {
    const auto blocks = system.service(i).rdms().hosted_blocks();
    std::printf("  node %zu hosts %zu blocks\n", i, blocks);
    if (blocks > most) {
      most = blocks;
      victim = i;
    }
  }
  std::printf("crashing node %zu (hosting %zu blocks)...\n", victim, most);
  system.crash_node(victim);

  // One traced read first: pick an entry with a replica on the crashed
  // node and follow its causal chain through the tracer — the failed READ
  // against the dead host and the failover READ that serves the data from
  // a surviving replica, across at least two nodes.
  std::vector<std::byte> out(4096);
  mem::EntryId victim_entry = 0;
  client.map().for_each([&](mem::EntryId id, const mem::EntryLocation& loc) {
    for (const auto& replica : loc.replicas)
      if (replica.node == system.node(victim).id() &&
          replica.node == loc.replicas.front().node)
        victim_entry = id;  // dead host is the *first* read target
  });
  const net::TraceId trace = system.node(0).next_trace_id();
  bool traced_done = false;
  Status traced_status;
  client.get(victim_entry, out, [&](const Status& s) {
    traced_status = s;
    traced_done = true;
  }, trace);
  system.simulator().run_until_flag(traced_done);
  std::printf("\ntraced failover read of entry %llu (%s, %s):\n%s\n",
              static_cast<unsigned long long>(victim_entry),
              net::format_trace_id(trace).c_str(),
              traced_status.ok() ? "ok" : "failed",
              sim::Tracer::format(
                  tracer.matching(net::format_trace_id(trace))).c_str());

  // Reads keep working immediately (failover to surviving replicas).
  int intact = 0;
  for (mem::EntryId id = 0; id < 64; ++id) {
    workloads::fill_page(page, id, 0.4, 99);
    if (client.get_sync(id, out).ok() && out == page) ++intact;
  }
  std::printf("immediately after crash: %d/64 entries readable\n", intact);

  // Give failure detection + repair time to run, then verify the factor.
  system.run_for(10 * kSecond);
  std::size_t fully_replicated = 0;
  client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
    std::size_t alive = 0;
    for (const auto& replica : loc.replicas)
      if (system.fabric().node_up(replica.node)) ++alive;
    if (alive >= 3) ++fully_replicated;
  });
  std::printf("after repair: %zu/64 entries back at 3 live replicas "
              "(repaired %llu, data lost %llu)\n",
              fully_replicated,
              static_cast<unsigned long long>(
                  system.total_counter("ldms.repaired_entries")),
              static_cast<unsigned long long>(
                  system.service(0).data_loss_entries()));

  // Bring the node back; it rejoins the group empty and can host again.
  system.recover_node(victim);
  system.run_for(3 * kSecond);
  std::printf("node %zu recovered; membership sees it alive: %s\n", victim,
              system.node(0).membership().alive(
                  system.node(victim).id())
                  ? "yes"
                  : "no");
  return 0;
}
