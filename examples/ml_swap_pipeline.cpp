// Example: an iterative ML job whose working set exceeds its DRAM budget,
// running over FastSwap (disaggregated-memory swapping) vs Linux disk swap.
//
//   $ ./ml_swap_pipeline [workload] [resident_percent]
//   $ ./ml_swap_pipeline PageRank 50
//
// This is the paper's headline scenario (§I, §V.A): the application is
// unmodified — it just touches pages — and the swap layer transparently
// decides where evicted pages live.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dm_system.h"
#include "swap/systems.h"
#include "workloads/driver.h"

int main(int argc, char** argv) {
  using namespace dm;
  const std::string workload = argc > 1 ? argv[1] : "LogisticRegression";
  const int resident_percent = argc > 2 ? std::atoi(argv[2]) : 50;

  const workloads::AppSpec* spec = workloads::find_app(workload);
  if (spec == nullptr) {
    std::printf("unknown workload '%s'; pick one of:\n", workload.c_str());
    for (const auto& app : workloads::app_catalog())
      std::printf("  %s\n", std::string(app.name).c_str());
    return 1;
  }

  constexpr std::uint64_t kPages = 512;  // scaled working set
  const auto resident =
      static_cast<std::uint64_t>(kPages * resident_percent / 100);
  std::printf("%s: %llu-page working set, %d%% resident (%llu pages)\n",
              workload.c_str(), static_cast<unsigned long long>(kPages),
              resident_percent, static_cast<unsigned long long>(resident));

  workloads::AppSpec app = *spec;
  app.iterations = 3;

  for (auto kind : {swap::SystemKind::kFastSwap, swap::SystemKind::kLinux}) {
    auto setup = swap::make_system(kind, resident);

    core::DmSystem::Config config;
    config.node_count = 4;
    config.node.shm.arena_bytes = 16 * MiB;
    config.node.recv.arena_bytes = 16 * MiB;
    config.node.disk.capacity_bytes = 128 * MiB;
    config.service = setup.service;
    core::DmSystem system(config);
    system.start();

    auto& client = system.create_server(0, 6 * MiB, setup.ldmc);
    swap::SwapManager memory(client, setup.swap,
                             workloads::content_for(app, 1));
    Rng rng(1);
    auto result = workloads::run_iterative(memory, app, kPages, rng);
    if (!result.status.ok()) {
      std::printf("%s failed: %s\n", setup.name.c_str(),
                  result.status.to_string().c_str());
      return 1;
    }
    std::printf(
        "  %-10s completion %-10s faults %-6llu  (tiers: shm %llu / remote "
        "%llu / disk %llu puts)\n",
        setup.name.c_str(), format_duration(result.elapsed).c_str(),
        static_cast<unsigned long long>(result.faults),
        static_cast<unsigned long long>(client.puts_to_shm()),
        static_cast<unsigned long long>(client.puts_to_remote()),
        static_cast<unsigned long long>(client.puts_to_disk()));
  }
  return 0;
}
