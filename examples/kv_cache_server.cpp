// Example: memcached-class cache whose overflow lives in disaggregated
// memory (paper §II.B: "Facebook caches the results of frequent database
// queries using Memcached" — and §III names key-value caching as a killer
// app for partial memory disaggregation).
//
//   $ ./kv_cache_server
//
// A zipfian request stream hits a cache sized for ~25% of the key space.
// Without disaggregation, cold values are dropped and every miss pays the
// database (disk) cost; with it, they are parked in the node's shared pool
// and remote memory.
#include <cstdio>

#include "core/dm_system.h"
#include "kvstore/kv_store.h"
#include "workloads/page_content.h"

int main() {
  using namespace dm;
  constexpr int kKeys = 256;
  constexpr int kRequests = 20000;

  for (bool disaggregated : {false, true}) {
    core::DmSystem::Config cluster;
    cluster.node_count = 4;
    cluster.node.shm.arena_bytes = 16 * MiB;
    cluster.node.recv.arena_bytes = 16 * MiB;
    cluster.service.rdmc.replication = 1;
    core::DmSystem system(cluster);
    system.start();
    auto& client = system.create_server(0, 64 * MiB);

    kv::KvStore::Config config;
    config.hot_bytes = 256 * KiB;  // ~64 of 256 values fit hot
    config.use_disaggregated_memory = disaggregated;
    kv::KvStore store(client, config);

    // Load the dataset once (as if warmed from the database).
    std::vector<std::byte> value(4096);
    for (int k = 0; k < kKeys; ++k) {
      workloads::fill_page(value, k, 0.4, 77);
      (void)store.set("obj:" + std::to_string(k), value);
    }

    // Serve a skewed request stream; misses pay a database query, modeled
    // as a random disk read on the node.
    auto& sim = system.simulator();
    auto& disk = system.node(0).disk();
    Rng rng(9);
    ZipfGenerator keys(kKeys, 0.99);
    std::uint64_t db_queries = 0;
    const SimTime start = sim.now();
    std::vector<std::byte> buf(4096);
    for (int r = 0; r < kRequests; ++r) {
      const auto k = static_cast<int>(keys.next(rng));
      auto got = store.get("obj:" + std::to_string(k));
      if (!got.ok()) {
        ++db_queries;  // cache miss: hit the database, then re-cache
        (void)disk.read_sync((rng.next_below(1024)) * 4096, buf);
        workloads::fill_page(value, k, 0.4, 77);
        (void)store.set("obj:" + std::to_string(k), value);
      }
    }
    const double seconds =
        static_cast<double>(sim.now() - start) / kSecond;
    std::printf(
        "%-22s %8.1f kops/s   hot-hits %-6llu dm-hits %-6llu db-queries %llu\n",
        disaggregated ? "with disaggregation" : "cache-only",
        kRequests / seconds / 1000.0,
        static_cast<unsigned long long>(
            store.metrics().counter_value("kv.hot_hits")),
        static_cast<unsigned long long>(
            store.metrics().counter_value("kv.dm_hits")),
        static_cast<unsigned long long>(db_queries));
  }
  return 0;
}
