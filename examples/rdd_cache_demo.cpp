// Example: mini-Spark job with DAHI off-heap RDD caching (paper §V.B).
//
//   $ ./rdd_cache_demo
//
// Builds a dataset larger than the executors' heap cache, runs an iterative
// job, and compares vanilla Spark (overflow partitions recomputed from
// lineage) with DAHI (overflow partitions cached in disaggregated memory).
#include <cstdio>

#include "core/dm_system.h"
#include "rddcache/mini_spark.h"

int main() {
  using namespace dm;
  using rdd::Record;

  for (auto policy : {rdd::OverflowPolicy::kRecompute,
                      rdd::OverflowPolicy::kDahi}) {
    core::DmSystem::Config config;
    config.node_count = 4;
    config.node.shm.arena_bytes = 16 * MiB;
    config.node.recv.arena_bytes = 16 * MiB;
    config.service.rdmc.replication = 1;
    core::DmSystem system(config);
    system.start();

    rdd::MiniSpark::Config spark_config;
    spark_config.executors = 4;
    spark_config.executor.cache_bytes = 64 * KiB;
    spark_config.executor.overflow = policy;
    rdd::MiniSpark spark(system, spark_config);

    // A 20-partition dataset with a transformation chain, reused over 6
    // iterations — the Spark pattern DAHI accelerates.
    auto features = rdd::Rdd::source(
        "features", 20, 4000,
        [](std::size_t p, std::size_t i) {
          return static_cast<Record>(p * 7919 + i);
        });
    auto normalized =
        features->map("normalize", [](Record r) { return r % 1000; })
            ->filter("nonzero", [](Record r) { return r != 0; });
    normalized->cache();

    auto& sim = system.simulator();
    const SimTime start = sim.now();
    Record checksum = 0;
    for (int iter = 0; iter < 6; ++iter) {
      auto sum = spark.sum(normalized);
      if (!sum.ok()) {
        std::printf("job failed: %s\n", sum.status().to_string().c_str());
        return 1;
      }
      checksum = *sum;
    }
    const char* name =
        policy == rdd::OverflowPolicy::kRecompute ? "vanilla Spark" : "DAHI";
    std::printf(
        "%-14s 6 iterations in %-10s (sum=%lld, heap hits %llu, recomputes "
        "%llu, off-heap fetches %llu)\n",
        name, format_duration(sim.now() - start).c_str(),
        static_cast<long long>(checksum),
        static_cast<unsigned long long>(spark.total_hits()),
        static_cast<unsigned long long>(spark.total_recomputes()),
        static_cast<unsigned long long>(spark.total_offheap_fetches()));
  }
  return 0;
}
