#!/usr/bin/env bash
# CI entry point: a lint stage (dm_lint + -Werror build), plain build +
# tests, an ASan/UBSan build + tests, an observability-artifact stage
# (flight dumps, span traces, profiler + micro-substrate JSON, with
# parse + determinism gates), a cluster-scale stage (the 128-node
# multi-tenant soak run twice same-seed in separate processes with a
# byte-identical snapshot diff), a CXL-tier stage (the litmus battery +
# coherence soak run twice same-seed cross-process and diffed, plus the
# storage-tiers ablation gate), then a gcov-instrumented build gating
# line coverage of the swap + compression + cxl layers.
#
# Usage: ./ci.sh [--lint-only|--plain-only|--sanitize-only|--obs-only|
#                 --scale-only|--ec-only|--cxl-only|--coverage-only]
#
# The lint pass builds the tree with -DDM_WERROR=ON (so -Wall -Wextra
# -Wshadow are hard errors in CI), runs tools/dm_lint over the source tree
# (determinism, layering, status hygiene, include hygiene, lock-order
# proofs, RPC/metric contracts, branch-sensitive status/span flow — see
# DESIGN.md), archives LINT_REPORT.json + METRIC_REGISTRY.json with a
# byte-stability diff, and runs the fixture suite proving every rule still
# fires.
# The sanitizer pass uses the DM_SANITIZE cache option defined in the root
# CMakeLists.txt (compiles the whole tree with -fsanitize=address,undefined).
# The coverage pass uses DM_COVERAGE and fails CI if line coverage of the
# .cc files under src/swap/ + src/compress/ + src/cxl/ drops below the
# floor.
set -euo pipefail

cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
mode="${1:-all}"

# Established level: 94.3% measured when the gate was introduced (the
# swap/compress/model/recovery suites reach everything except a handful
# of defensive error branches); the floor leaves a few points of slack
# for legitimate churn.
coverage_floor=90.0

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

run_lint() {
  local build_dir=build-lint
  local art="$build_dir/artifacts"
  # -Werror build proves the tree is warning-free before anything runs.
  cmake -B "$build_dir" -S . -DDM_WERROR=ON
  cmake --build "$build_dir" -j "$jobs"

  # Tree scan (flow + protocol rules included: lock-order proofs, RPC and
  # metric contracts, branch-sensitive status/span checks). The JSON report
  # is archived, and a second run is diffed against the first so the report
  # is provably byte-stable.
  rm -rf "$art"
  mkdir -p "$art"
  echo "==> dm_lint: tree scan (JSON report + byte-stability check)"
  "./$build_dir/tools/dm_lint" --root . --json > "$art/LINT_REPORT.json"
  "./$build_dir/tools/dm_lint" --root . --json > "$art/LINT_REPORT.second.json"
  diff "$art/LINT_REPORT.json" "$art/LINT_REPORT.second.json"
  rm "$art/LINT_REPORT.second.json"

  # Harvested metric/span registry — the ground truth the metric-contract
  # rule checks gate specs (like the SLO string below) against.
  echo "==> dm_lint: metric registry"
  "./$build_dir/tools/dm_lint" --root . --metric-registry \
    > "$art/METRIC_REGISTRY.json"
  grep -q '"schema_version": 2' "$art/METRIC_REGISTRY.json"

  echo "==> dm_lint: fixture suite"
  ctest --test-dir "$build_dir" --output-on-failure -R 'Lint' -j "$jobs"
}

run_obs() {
  local build_dir=build
  local art="$build_dir/artifacts"
  cmake -B "$build_dir" -S .
  cmake --build "$build_dir" -j "$jobs" \
    --target dm_top bench_micro_substrate bench_profile_substrate

  rm -rf "$art"
  mkdir -p "$art/run_a" "$art/run_b"

  # Two same-seed chaos runs of dm_top with the full observability surface
  # attached: span tracer (Chrome trace), per-node flight recorders (dumped
  # by the injected crash), and one SLO. Everything the runs emit is in
  # virtual time, so the two directories must be byte-identical.
  echo "==> obs: dm_top chaos soak x2 (trace + flight dumps + SLO)"
  local run
  for run in run_a run_b; do
    (cd "$art/$run" &&
     ../../tools/dm_top --nodes 4 --ops 400 --seed 7 --chaos \
       --trace-out trace.json --flight-dir . \
       --slo "get_p99: p99 ldms.get_ns < 2ms over 200ms" > dm_top.out)
    (cd "$art/$run" && ../../bench/bench_profile_substrate > profile.out)
  done

  echo "==> obs: chaos soak produced flight dumps"
  compgen -G "$art/run_a/flight_*.json" > /dev/null || {
    echo "==> OBS GATE FAILED: no flight_<node>.json from the chaos soak"
    exit 1
  }

  echo "==> obs: same-seed artifact determinism"
  diff -r "$art/run_a" "$art/run_b" || {
    echo "==> OBS GATE FAILED: same-seed runs differ"
    exit 1
  }

  # The micro-substrate bench measures host-CPU throughput of the simulation
  # substrate itself (wall-clock, inherently run-to-run noisy), so its JSON
  # is archived and parse-checked but exempt from the byte-identical gate.
  echo "==> obs: micro-substrate benchmark JSON"
  ./"$build_dir"/bench/bench_micro_substrate --benchmark_min_time=0.01 \
    --benchmark_out="$art/BENCH_micro_substrate.json" \
    --benchmark_out_format=json > /dev/null

  echo "==> obs: every emitted JSON artifact parses"
  python3 - "$art" <<'EOF'
import glob, json, sys
paths = sorted(glob.glob(sys.argv[1] + "/**/*.json", recursive=True))
if not paths:
    sys.exit("no JSON artifacts found")
for path in paths:
    with open(path) as f:
        json.load(f)
    print(f"    parsed {path}")
EOF
}

run_scale() {
  local build_dir=build
  local art="$build_dir/artifacts/scale"
  cmake -B "$build_dir" -S .
  cmake --build "$build_dir" -j "$jobs" --target cluster_scale_test

  rm -rf "$art"
  mkdir -p "$art/run_a" "$art/run_b"

  # Two separate processes run the 128-node multi-tenant soak with the same
  # seed; each dumps its end-of-soak metrics snapshot via DM_SCALE_SNAPSHOT.
  # Everything in the soak is virtual-time, so the dumps must be
  # byte-identical — any divergence means nondeterminism crept into the
  # placement / harvest / migration path at cluster scale.
  echo "==> scale: 128-node soak x2 (same seed, separate processes)"
  local run
  for run in run_a run_b; do
    DM_SCALE_SNAPSHOT="$art/$run/snapshot.json" \
      ./"$build_dir"/tests/cluster_scale_test \
      --gtest_filter='ClusterScaleSoakTest.ZipfianChurnAt128NodesIsLossFreeAndDeterministic' \
      > "$art/$run/soak.out"
  done

  echo "==> scale: cross-process same-seed snapshot determinism"
  diff "$art/run_a/snapshot.json" "$art/run_b/snapshot.json" || {
    echo "==> SCALE GATE FAILED: same-seed soak snapshots differ"
    exit 1
  }

  echo "==> scale: snapshot parses and carries the scale counters"
  python3 - "$art/run_a/snapshot.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    snap = json.load(f)
text = json.dumps(snap)
for key in ("placement.rebalance_moves", "ldms.migrated_entries",
            "harvest.offload_requests"):
    if key not in text:
        sys.exit(f"snapshot missing counter {key}")
    print(f"    found {key}")
EOF
}

run_ec() {
  local build_dir=build
  local art="$build_dir/artifacts/ec"
  cmake -B "$build_dir" -S .
  cmake --build "$build_dir" -j "$jobs" \
    --target ec_test chaos_test bench_ec_resilience

  rm -rf "$art"
  mkdir -p "$art/run_a" "$art/run_b"

  echo "==> ec: codec + system battery"
  ./"$build_dir"/tests/ec_test > "$art/ec_test.out"

  # The EC crash-storm soak runs twice with the same seed in separate
  # processes; each dumps its end-of-soak metrics snapshot via
  # DM_EC_SNAPSHOT. Any divergence means nondeterminism crept into the
  # encode / degraded-read / shard-repair path.
  echo "==> ec: crash-storm soak x2 (same seed, separate processes)"
  local run
  for run in run_a run_b; do
    DM_EC_SNAPSHOT="$art/$run/snapshot.json" \
      ./"$build_dir"/tests/chaos_test \
      --gtest_filter='ChaosEcSoakTest.*' \
      > "$art/$run/soak.out"
  done

  echo "==> ec: cross-process same-seed snapshot determinism"
  diff "$art/run_a/snapshot.json" "$art/run_b/snapshot.json" || {
    echo "==> EC GATE FAILED: same-seed soak snapshots differ"
    exit 1
  }

  # The resilience bench writes the headline comparison JSON; gate the
  # Hydra economics: EC overhead strictly below replication's, recovery
  # within 3x, zero loss anywhere.
  echo "==> ec: resilience bench + economics gate"
  (cd "$build_dir" && ./bench/bench_ec_resilience > artifacts/ec/bench.out)
  python3 - "$build_dir/BENCH_ec_resilience.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
if bench["total_lost"] != 0:
    sys.exit(f"EC GATE FAILED: {bench['total_lost']} entries lost")
if not bench["ec_overhead_below_replication"]:
    sys.exit("EC GATE FAILED: EC memory overhead not below replication's")
if not bench["ec_recovery_within_3x"]:
    sys.exit("EC GATE FAILED: EC recovery exceeded 3x replication's")
rep = bench["replication_overhead"]
for mode in bench["modes"]:
    if mode["mode"].startswith("ec_"):
        k, r = (int(x) for x in mode["mode"].split("_")[1:])
        bound = (k + r) / k + 1e-6
        if mode["overhead"] > bound:
            sys.exit(f"EC GATE FAILED: {mode['mode']} overhead "
                     f"{mode['overhead']:.3f} exceeds (k+r)/k={bound:.3f}")
        print(f"    {mode['mode']}: overhead {mode['overhead']:.3f}x "
              f"(bound {bound:.3f}x, replication {rep:.3f}x), "
              f"recovery {mode['recovery_ns']} ns, lost {mode['lost']}")
print("    economics gate passed")
PYEOF
}

run_cxl() {
  local build_dir=build
  local art="$build_dir/artifacts/cxl"
  cmake -B "$build_dir" -S .
  cmake --build "$build_dir" -j "$jobs" \
    --target cxl_test bench_ablation_storage_tiers

  rm -rf "$art"
  mkdir -p "$art/run_a" "$art/run_b"

  # The full battery runs twice with the same seeds in separate processes;
  # each dumps the litmus outcome log plus the seeded coherence-soak
  # snapshot via DM_CXL_SNAPSHOT. The dumps must be byte-identical — any
  # divergence means nondeterminism crept into the protocol (lock queue
  # order, snoop fan-out, store-buffer drain) or the tiering path.
  echo "==> cxl: litmus battery + coherence soak x2 (same seed, separate processes)"
  local run
  for run in run_a run_b; do
    DM_CXL_SNAPSHOT="$art/$run/snapshot.txt" \
      ./"$build_dir"/tests/cxl_test > "$art/$run/cxl_test.out"
  done

  echo "==> cxl: cross-process same-seed battery determinism"
  diff "$art/run_a/snapshot.txt" "$art/run_b/snapshot.txt" || {
    echo "==> CXL GATE FAILED: same-seed battery dumps differ"
    exit 1
  }

  # The storage-tiers bench carries the CXL ablation; gate the tier
  # economics: the coherent tier must strictly beat DRAM->RDMA on the hot
  # working set, and with the tier disabled the schedule must not move.
  echo "==> cxl: storage-tiers ablation + tier gate"
  (cd "$build_dir" && ./bench/bench_ablation_storage_tiers > artifacts/cxl/bench.out)
  python3 - "$build_dir/BENCH_storage_tiers.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
cxl = bench["cxl"]
if not cxl["baseline_repeat_identical"]:
    sys.exit("CXL GATE FAILED: tier-off baseline not byte-identical on repeat")
if cxl["speedup"] <= 1.0:
    sys.exit(f"CXL GATE FAILED: speedup {cxl['speedup']:.4f} <= 1.0 "
             "(tier must strictly improve hot-working-set latency)")
if cxl["line_hits"] == 0:
    sys.exit("CXL GATE FAILED: the hot set never hit the coherent tier")
print(f"    speedup {cxl['speedup']:.4f}x "
      f"({cxl['baseline_elapsed_ns']} ns -> {cxl['cxl_elapsed_ns']} ns), "
      f"{cxl['line_hits']} line hits, {cxl['promotions']} promotions, "
      f"{cxl['demotions']} demotions")
print("    tier gate passed")
PYEOF
}

run_coverage() {
  local build_dir=build-cov
  # The swap/compress test set: unit, sweep, adaptive-engine, the
  # trace-replay model checker, and the crash-recovery suite (which is
  # what reaches the write-back failure / degraded-fallback paths).
  local tests=(swap_test swap_adaptive_test swap_sweep_test model_test
               compress_test recovery_test cxl_test)
  cmake -B "$build_dir" -S . -DDM_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
  cmake --build "$build_dir" -j "$jobs" --target "${tests[@]}"
  find "$build_dir" -name '*.gcda' -delete
  for test in "${tests[@]}"; do
    "./$build_dir/tests/$test" >/dev/null
  done

  local covdir="$build_dir/coverage"
  rm -rf "$covdir"
  mkdir -p "$covdir"
  : > "$covdir/lines.txt"
  local lib src objdir
  for lib in swap compress cxl; do
    objdir="../src/$lib/CMakeFiles/dm_${lib}.dir"
    for src in src/"$lib"/*.cc; do
      # cmake names objects "<src>.cc.o", so gcov needs the object path
      # (with a bare directory it would look for "<src>.gcno").
      (cd "$covdir" &&
       gcov -o "$objdir/$(basename "$src").o" "../../$src" 2>/dev/null |
       awk -v want="$src" '
         /^File /          { f = $0; sub(/^File ./, "", f);
                             sub(/.$/, "", f); keep = (f ~ want"$") }
         keep && /^Lines executed:/ {
           line = $0; sub(/^Lines executed:/, "", line);
           split(line, parts, "% of ");
           printf "%s %s %s\n", want, parts[1], parts[2];
           keep = 0
         }' >> lines.txt)
    done
  done

  awk -v floor="$coverage_floor" '
    { covered += $2 * $3 / 100.0; total += $3;
      printf "    %-36s %6.2f%% of %d lines\n", $1, $2, $3 }
    END {
      if (total == 0) { print "coverage: no gcov data found"; exit 1 }
      pct = 100.0 * covered / total;
      printf "==> swap+compress+cxl line coverage: %.2f%% (floor %.1f%%)\n",
             pct, floor;
      if (pct < floor) {
        print "==> COVERAGE GATE FAILED: below established level";
        exit 1
      }
    }' "$covdir/lines.txt"
}

if [[ "$mode" == "all" || "$mode" == "--lint-only" ]]; then
  echo "==> lint build (-Werror) + dm_lint"
  run_lint
fi

if [[ "$mode" == "all" || "$mode" == "--plain-only" ]]; then
  echo "==> plain build + tests"
  run_suite build
fi

if [[ "$mode" == "all" || "$mode" == "--sanitize-only" ]]; then
  echo "==> sanitized build + tests (ASan + UBSan)"
  run_suite build-asan -DDM_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

if [[ "$mode" == "all" || "$mode" == "--obs-only" ]]; then
  echo "==> observability artifacts (flight/trace/profile/micro JSON)"
  run_obs
fi

if [[ "$mode" == "all" || "$mode" == "--scale-only" ]]; then
  echo "==> cluster-scale soak (same-seed cross-process determinism)"
  run_scale
fi

if [[ "$mode" == "all" || "$mode" == "--ec-only" ]]; then
  echo "==> erasure-coding battery (codec, soak determinism, economics gate)"
  run_ec
fi

if [[ "$mode" == "all" || "$mode" == "--cxl-only" ]]; then
  echo "==> cxl battery (litmus, soak determinism, tier economics gate)"
  run_cxl
fi

if [[ "$mode" == "all" || "$mode" == "--coverage-only" ]]; then
  echo "==> coverage build + swap/compress/cxl gate"
  run_coverage
fi

echo "==> ci passed"
