#!/usr/bin/env bash
# CI entry point: plain build + tests, then an ASan/UBSan build + tests.
#
# Usage: ./ci.sh [--plain-only|--sanitize-only]
#
# The sanitizer pass uses the DM_SANITIZE cache option defined in the root
# CMakeLists.txt (compiles the whole tree with -fsanitize=address,undefined).
set -euo pipefail

cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
mode="${1:-all}"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

if [[ "$mode" != "--sanitize-only" ]]; then
  echo "==> plain build + tests"
  run_suite build
fi

if [[ "$mode" != "--plain-only" ]]; then
  echo "==> sanitized build + tests (ASan + UBSan)"
  run_suite build-asan -DDM_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi

echo "==> ci passed"
